// Tests for traffic patterns and the max-min fair load model.
#include <gtest/gtest.h>

#include <set>

#include "src/aspen/generator.h"
#include "src/routing/updown.h"
#include "src/traffic/load.h"
#include "src/traffic/patterns.h"
#include "src/util/status.h"

namespace aspen {
namespace {

Topology fat34() { return Topology::build(fat_tree(3, 4)); }

TEST(Patterns, PermutationIsOneToOne) {
  const Topology topo = fat34();
  Rng rng(5);
  const auto flows = permutation_traffic(topo, rng);
  EXPECT_GE(flows.size(), topo.num_hosts() - 1);
  std::set<std::uint32_t> sources;
  std::set<std::uint32_t> destinations;
  for (const Flow& f : flows) {
    EXPECT_NE(f.src, f.dst);
    EXPECT_TRUE(sources.insert(f.src.value()).second);
    EXPECT_TRUE(destinations.insert(f.dst.value()).second);
  }
}

TEST(Patterns, PermutationDeterministicPerSeed) {
  const Topology topo = fat34();
  Rng a(9);
  Rng b(9);
  EXPECT_EQ(permutation_traffic(topo, a), permutation_traffic(topo, b));
}

TEST(Patterns, UniformRandomBounds) {
  const Topology topo = fat34();
  Rng rng(1);
  const auto flows = uniform_random_traffic(topo, 500, rng);
  EXPECT_EQ(flows.size(), 500u);
  for (const Flow& f : flows) {
    EXPECT_NE(f.src, f.dst);
    EXPECT_LT(f.src.value(), topo.num_hosts());
    EXPECT_LT(f.dst.value(), topo.num_hosts());
  }
}

TEST(Patterns, HotspotTargetsOneEdge) {
  const Topology topo = fat34();
  Rng rng(2);
  const auto flows = hotspot_traffic(topo, 3, rng);
  const SwitchId hot = topo.switch_at(1, 3);
  // Every non-hot host sends exactly one flow into the hot edge.
  EXPECT_EQ(flows.size(), topo.num_hosts() - 2);
  for (const Flow& f : flows) {
    EXPECT_EQ(topo.edge_switch_of(f.dst), hot);
    EXPECT_NE(topo.edge_switch_of(f.src), hot);
  }
  EXPECT_THROW(hotspot_traffic(topo, 99, rng), PreconditionError);
}

TEST(Patterns, StrideWrapsAround) {
  const Topology topo = fat34();
  const auto flows = stride_traffic(topo, topo.num_hosts() / 2);
  EXPECT_EQ(flows.size(), topo.num_hosts());
  EXPECT_EQ(flows[0].dst.value(), 8u);
  EXPECT_EQ(flows[15].dst.value(), 7u);
  EXPECT_THROW(stride_traffic(topo, 0), PreconditionError);
  EXPECT_THROW(stride_traffic(topo, topo.num_hosts()), PreconditionError);
}

TEST(Patterns, PodLocalNeverCrossesCore) {
  const Topology topo = fat34();
  Rng rng(4);
  const RoutingState routes = compute_updown_routes(topo);
  const TableRouter router(routes);
  const LinkStateOverlay intact(topo);
  for (const Flow& f : pod_local_traffic(topo, rng)) {
    const WalkResult walk =
        walk_packet(topo, router, intact, f.src, f.dst);
    ASSERT_TRUE(walk.delivered());
    for (const NodeId node : walk.path) {
      if (!topo.is_switch_node(node)) continue;
      EXPECT_LT(topo.level_of(topo.switch_of(node)), 3)
          << "pod-local flow climbed to the core";
    }
  }
}

TEST(Load, TwoFlowsSharingALinkSplitIt) {
  // Both hosts on edge 0 send to the two hosts of edge 1 (same pod): the
  // paths contend on the agg links; max-min gives each flow 1/2 … unless
  // ECMP splits them across the two aggs, giving 1.0 each.  Force the
  // shared bottleneck instead: two flows from the SAME host pair direction
  // to the same destination host share that destination's host link.
  const Topology topo = fat34();
  const RoutingState routes = compute_updown_routes(topo);
  const TableRouter router(routes);
  const LinkStateOverlay intact(topo);
  const std::vector<Flow> flows{{HostId{0}, HostId{4}},
                                {HostId{1}, HostId{4}}};
  const LoadResult result = assign_load(topo, router, intact, flows);
  ASSERT_EQ(result.flows_routed, 2u);
  // The dst host link is shared: each flow gets exactly 1/2.
  EXPECT_DOUBLE_EQ(result.rates[0], 0.5);
  EXPECT_DOUBLE_EQ(result.rates[1], 0.5);
  EXPECT_DOUBLE_EQ(result.aggregate_throughput, 1.0);
  EXPECT_EQ(result.max_link_flows, 2u);
}

TEST(Load, SingleFlowGetsFullRate) {
  const Topology topo = fat34();
  const RoutingState routes = compute_updown_routes(topo);
  const TableRouter router(routes);
  const LinkStateOverlay intact(topo);
  const LoadResult result = assign_load(
      topo, router, intact, {{HostId{0}, HostId{15}}});
  ASSERT_EQ(result.flows_routed, 1u);
  EXPECT_DOUBLE_EQ(result.rates[0], 1.0);
  EXPECT_DOUBLE_EQ(result.mean_path_links, 6.0);
}

TEST(Load, RatesAreValidAndFair) {
  const Topology topo = fat34();
  const RoutingState routes = compute_updown_routes(topo);
  const TableRouter router(routes);
  const LinkStateOverlay intact(topo);
  Rng rng(7);
  const auto flows = permutation_traffic(topo, rng);
  const LoadResult result = assign_load(topo, router, intact, flows);
  EXPECT_EQ(result.flows_unroutable, 0u);
  for (const double rate : result.rates) {
    EXPECT_GT(rate, 0.0);
    EXPECT_LE(rate, 1.0 + 1e-9);
  }
  EXPECT_GT(result.normalized_throughput(), 0.4);  // no pathological collapse
}

TEST(Load, CapacityConservation) {
  // Total allocated rate through any link never exceeds its capacity: the
  // flows sharing the most-loaded link sum to at most 1.
  const Topology topo = fat34();
  const RoutingState routes = compute_updown_routes(topo);
  const TableRouter router(routes);
  const LinkStateOverlay intact(topo);
  Rng rng(13);
  const auto flows = uniform_random_traffic(topo, 64, rng);
  const LoadResult result = assign_load(topo, router, intact, flows);
  // Aggregate cannot exceed hosts×1 in or out.
  EXPECT_LE(result.aggregate_throughput,
            static_cast<double>(topo.num_hosts()));
  EXPECT_GT(result.min_rate, 0.0);
}

TEST(Load, UnroutableFlowsCounted) {
  const Topology topo = fat34();
  LinkStateOverlay broken(topo);
  const SwitchId edge0 = topo.switch_at(1, 0);
  for (const auto& nb : topo.up_neighbors(edge0)) broken.fail(nb.link);
  const RoutingState routes = compute_updown_routes(topo, broken);
  const TableRouter router(routes);
  const LoadResult result = assign_load(
      topo, router, broken,
      {{HostId{4}, HostId{0}}, {HostId{4}, HostId{8}}});
  EXPECT_EQ(result.flows_unroutable, 1u);
  EXPECT_EQ(result.flows_routed, 1u);
}

TEST(Load, FailureDegradesHotspotThroughput) {
  // Knock out one of the hot edge's uplinks: incast throughput drops.
  const Topology topo = fat34();
  const LinkStateOverlay intact(topo);
  Rng rng(3);
  const auto flows = hotspot_traffic(topo, 0, rng);

  const RoutingState before = compute_updown_routes(topo);
  const LoadResult healthy =
      assign_load(topo, TableRouter(before), intact, flows);

  LinkStateOverlay degraded(topo);
  degraded.fail(topo.up_neighbors(topo.switch_at(1, 0))[0].link);
  const RoutingState after = compute_updown_routes(topo, degraded);
  const LoadResult hurt =
      assign_load(topo, TableRouter(after), degraded, flows);

  EXPECT_EQ(hurt.flows_unroutable, 0u);  // still reachable
  EXPECT_LT(hurt.aggregate_throughput, healthy.aggregate_throughput);
}

TEST(Load, AspenRedundancyPreservesSubscriptionRatio) {
  // Every Aspen tree keeps k/2 uplinks per L1 switch for k/2 hosts, so
  // permutation traffic is never structurally oversubscribed: aggregate
  // max-min throughput per flow stays in the same band as the fat tree's.
  Rng rng(21);
  const Topology fat = fat34();
  const Topology aspen =
      Topology::build(generate_tree(4, 4, FaultToleranceVector{1, 0, 0}));

  const auto run = [&rng](const Topology& topo) {
    const RoutingState routes = compute_updown_routes(topo);
    const TableRouter router(routes);
    const LinkStateOverlay intact(topo);
    Rng local(99);
    const auto flows = permutation_traffic(topo, local);
    return assign_load(topo, router, intact, flows).normalized_throughput();
  };
  const double fat_throughput = run(fat);
  const double aspen_throughput = run(aspen);
  EXPECT_GT(aspen_throughput, 0.5 * fat_throughput);
}

}  // namespace
}  // namespace aspen
