// Unit and property tests for the observability layer (src/obs/):
// registry semantics, tracer ring behavior, both export formats, the
// zero-overhead-when-disabled contract, and metric identities measured
// over randomized protocol runs.
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/aspen/generator.h"
#include "src/fault/chaos.h"
#include "src/fault/seed.h"
#include "src/obs/obs.h"
#include "src/routing/updown.h"
#include "src/topo/link_state.h"
#include "src/topo/topology.h"

namespace aspen {
namespace {

// ---- MetricsRegistry units ---------------------------------------------

TEST(MetricsRegistry, CountersAccumulate) {
  obs::MetricsRegistry registry;
  EXPECT_TRUE(registry.empty());
  registry.add("a");
  registry.add("a", 4);
  registry.add("b", 2);
  EXPECT_EQ(registry.counter("a"), 5u);
  EXPECT_EQ(registry.counter("b"), 2u);
  EXPECT_EQ(registry.counter("missing"), 0u);
  EXPECT_FALSE(registry.empty());
  registry.reset();
  EXPECT_TRUE(registry.empty());
  EXPECT_EQ(registry.counter("a"), 0u);
}

TEST(MetricsRegistry, GaugesLastWriteWins) {
  obs::MetricsRegistry registry;
  registry.set_gauge("g", 1.5);
  registry.set_gauge("g", -2.25);
  EXPECT_DOUBLE_EQ(registry.gauge("g"), -2.25);
  EXPECT_DOUBLE_EQ(registry.gauge("missing"), 0.0);
}

TEST(MetricsRegistry, HistogramBucketsPlaceOnInclusiveUpperBounds) {
  obs::MetricsRegistry registry;
  registry.register_histogram("h", {1.0, 10.0});
  for (const double v : {0.5, 1.0, 1.5, 10.0, 11.0}) registry.observe("h", v);
  const obs::HistogramData* h = registry.histogram("h");
  ASSERT_NE(h, nullptr);
  ASSERT_EQ(h->counts.size(), 3u);
  EXPECT_EQ(h->counts[0], 2u);  // 0.5, 1.0 — bounds are inclusive
  EXPECT_EQ(h->counts[1], 2u);  // 1.5, 10.0
  EXPECT_EQ(h->counts[2], 1u);  // 11.0 → +inf bucket
  EXPECT_EQ(h->count, 5u);
  EXPECT_DOUBLE_EQ(h->sum, 0.5 + 1.0 + 1.5 + 10.0 + 11.0);
}

TEST(MetricsRegistry, ObserveAutoRegistersDefaultBounds) {
  obs::MetricsRegistry registry;
  registry.observe("auto", 3.0);
  const obs::HistogramData* h = registry.histogram("auto");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->bounds, obs::default_histogram_bounds());
  EXPECT_EQ(h->counts.size(), h->bounds.size() + 1);
}

TEST(MetricsRegistry, ToJsonIsValidAndSorted) {
  obs::MetricsRegistry registry;
  registry.add("z.counter", 3);
  registry.add("a.counter", 1);
  registry.set_gauge("g\"quoted", 0.5);
  registry.observe("lat", 2.0);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"a.counter\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"z.counter\": 3"), std::string::npos);
  EXPECT_LT(json.find("a.counter"), json.find("z.counter"));
  EXPECT_NE(json.find("\"g\\\"quoted\""), std::string::npos);
  EXPECT_NE(json.find("\"le\": \"inf\""), std::string::npos);
}

// ---- Tracer units ------------------------------------------------------

TEST(Tracer, RingEvictsOldestAndKeepsSequenceNumbers) {
  obs::Tracer tracer(4);
  for (std::uint32_t i = 0; i < 6; ++i) {
    tracer.emit(static_cast<double>(i), obs::TraceKind::kMsgSend, i, 0, 0,
                "t");
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.total_emitted(), 6u);
  EXPECT_EQ(tracer.dropped(), 2u);
  const std::vector<obs::TraceRecord> records = tracer.records();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.front().seq, 2u);  // oldest two evicted
  EXPECT_EQ(records.back().seq, 5u);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.total_emitted(), 0u);
}

TEST(Tracer, JsonlFormatIsStable) {
  obs::Tracer tracer(8);
  tracer.emit(1.5, obs::TraceKind::kLinkFail, 7, 0, 42, "anp");
  EXPECT_EQ(tracer.to_jsonl(),
            "{\"seq\":0,\"t_ms\":1.500000,\"kind\":\"link_fail\",\"a\":7,"
            "\"b\":0,\"value\":42,\"detail\":\"anp\"}\n");
}

TEST(Tracer, BinaryRoundTrip) {
  obs::Tracer tracer(16);
  tracer.emit(0.0, obs::TraceKind::kRun, 0, 0, 9, "start");
  tracer.emit(2.25, obs::TraceKind::kMsgSend, 3, 4, 5, "anp");
  tracer.emit(2.25, obs::TraceKind::kMsgSend, 3, 5, 5, "anp");  // interned
  tracer.emit(9.0, obs::TraceKind::kChaosCheck, 64, 0, 1, "");
  const std::string binary = tracer.to_binary();
  std::vector<obs::OwnedTraceRecord> decoded;
  ASSERT_TRUE(obs::read_binary(binary, decoded));
  ASSERT_EQ(decoded.size(), 4u);
  EXPECT_EQ(decoded[0].detail, "start");
  EXPECT_EQ(decoded[1].seq, 1u);
  EXPECT_EQ(decoded[1].b, 4u);
  EXPECT_DOUBLE_EQ(decoded[1].t_ms, 2.25);
  EXPECT_EQ(decoded[2].detail, "anp");
  EXPECT_EQ(decoded[3].kind, obs::TraceKind::kChaosCheck);
}

TEST(Tracer, BinaryRejectsCorruptInput) {
  obs::Tracer tracer(8);
  tracer.emit(0.0, obs::TraceKind::kRun, 0, 0, 0, "x");
  const std::string binary = tracer.to_binary();
  std::vector<obs::OwnedTraceRecord> decoded;
  EXPECT_FALSE(obs::read_binary("BADMAGIC" + binary.substr(8), decoded));
  EXPECT_TRUE(decoded.empty());
  EXPECT_FALSE(obs::read_binary(binary.substr(0, binary.size() - 3), decoded));
  EXPECT_FALSE(obs::read_binary("", decoded));
}

// ---- ObsConfig / gating ------------------------------------------------

TEST(ObsConfig, DisabledEmissionIsANoOp) {
  obs::ObsConfig off;  // defaults: everything disabled
  const obs::ScopedObs scoped(off);
  obs::count("should.not.exist");
  obs::observe("nor.this", 1.0);
  obs::trace_event(0.0, obs::TraceKind::kRun, 0, 0, 0, "ignored");
  EXPECT_TRUE(obs::metrics().empty());
  EXPECT_EQ(obs::tracer().size(), 0u);
}

TEST(ObsConfig, ScopedObsRestoresAndClears) {
  obs::ObsConfig on;
  on.metrics = true;
  on.trace = true;
  {
    const obs::ScopedObs scoped(on);
    EXPECT_TRUE(obs::metrics_enabled());
    EXPECT_TRUE(obs::trace_enabled());
    obs::count("inner");
    obs::trace_event(0.0, obs::TraceKind::kRun, 0, 0, 0, "inner");
    EXPECT_EQ(obs::metrics().counter("inner"), 1u);
    EXPECT_EQ(obs::tracer().size(), 1u);
  }
  EXPECT_FALSE(obs::metrics_enabled());
  EXPECT_FALSE(obs::trace_enabled());
  EXPECT_TRUE(obs::metrics().empty());
  EXPECT_EQ(obs::tracer().size(), 0u);
}

TEST(ObsConfig, PauseObsSuppressesEmissionButKeepsData) {
  obs::ObsConfig on;
  on.metrics = true;
  on.trace = true;
  const obs::ScopedObs scoped(on);
  obs::count("kept");
  obs::trace_event(0.0, obs::TraceKind::kRun, 0, 0, 0, "kept");
  {
    const obs::PauseObs quiet;
    EXPECT_FALSE(obs::metrics_enabled());
    EXPECT_FALSE(obs::trace_enabled());
    obs::count("kept");  // swallowed: emission is paused
    obs::trace_event(0.0, obs::TraceKind::kRun, 0, 0, 0, "ignored");
  }
  // Flags restored, and the data collected before the pause survived.
  EXPECT_TRUE(obs::metrics_enabled());
  EXPECT_TRUE(obs::trace_enabled());
  EXPECT_EQ(obs::metrics().counter("kept"), 1u);
  EXPECT_EQ(obs::tracer().size(), 1u);
}

// ---- Property: channel copy conservation -------------------------------
//
// channel.sent_total counts physical copies: each attempt contributes its
// one copy (even when the wire eats it) plus one per duplicated extra, so
//     delivered + dropped == sent_total == attempted + duplicated_extra
// must hold after any run, lossy or not.
void expect_channel_conservation(const char* label) {
  const obs::MetricsRegistry& m = obs::metrics();
  const std::uint64_t sent = m.counter("channel.sent_total");
  EXPECT_EQ(m.counter("channel.delivered") + m.counter("channel.dropped"),
            sent)
      << label;
  EXPECT_EQ(m.counter("channel.attempted") +
                m.counter("channel.duplicated_extra"),
            sent)
      << label;
  EXPECT_LE(m.counter("channel.health_dropped"), m.counter("channel.dropped"))
      << label;
}

TEST(ObsProperty, ChannelConservationOverRandomCampaigns) {
  struct Tree {
    int n;
    int k;
    const char* ftv;
  };
  const Tree trees[] = {{4, 6, "<0,2,0>"}, {4, 4, "<1,0,0>"}, {3, 4, "<1,0>"}};
  std::mt19937_64 rng(20260807);
  for (const Tree& t : trees) {
    const Topology topo = Topology::build(
        generate_tree(t.n, t.k, FaultToleranceVector::parse(t.ftv)));
    for (int round = 0; round < 2; ++round) {
      ChaosOptions options;
      options.seed = rng();
      options.num_events = 8;
      options.check_flows = 32;
      const bool lossy = round == 1;
      if (lossy) {
        options.delays.channel.drop_rate = 0.1;
        options.delays.channel.duplicate_rate = 0.025;
        options.delays.channel.reliable = true;
        options.delays.channel.seed =
            fault::derive_stream_seed(options.seed, fault::kStreamChannel);
      }
      obs::ObsConfig config;
      config.metrics = true;
      const obs::ScopedObs scoped(config);
      const ChaosOutcome outcome = run_chaos_campaign(
          round == 0 ? ProtocolKind::kLsp : ProtocolKind::kAnp, topo,
          options);
      EXPECT_TRUE(outcome.tables_restored) << t.ftv;
      expect_channel_conservation(t.ftv);
      if (lossy) {
        // The registry agrees with the campaign's own accounting.
        EXPECT_EQ(obs::metrics().counter("channel.dropped"),
                  outcome.channel_dropped);
        EXPECT_EQ(obs::metrics().counter("channel.duplicated_extra"),
                  outcome.channel_duplicated);
      }
    }
  }
}

// ---- Property: incremental routing row accounting ----------------------
//
// On single-link churn, every destination row is fully recomputed,
// patched, or untouched; escalated rows are a subset of the full ones.
// The registry's running totals must agree with the per-call stats.
TEST(ObsProperty, RoutingRowAccountingOnLinkChurn) {
  std::mt19937_64 rng(424242);
  for (const char* ftv : {"<0,2,0>", "<2,0,0>", "<0,2,2>"}) {
    const Topology topo =
        Topology::build(generate_tree(4, 6, FaultToleranceVector::parse(ftv)));
    LinkStateOverlay overlay(topo);

    obs::ObsConfig config;
    config.metrics = true;
    const obs::ScopedObs scoped(config);

    RoutingState state =
        compute_updown_routes(topo, overlay, DestGranularity::kEdge);
    const std::uint64_t base_full =
        obs::metrics().counter("routing.rows_full_recompute");

    std::uint64_t sum_full = 0;
    std::uint64_t sum_escalated = 0;
    std::uint64_t sum_patched = 0;
    std::uint64_t patches = 0;
    const std::span<const LinkId> candidates = topo.links_at_level(2);
    ASSERT_FALSE(candidates.empty());
    for (int round = 0; round < 6; ++round) {
      const LinkId link =
          candidates[rng() % candidates.size()];
      const bool fail = overlay.is_up(link);
      if (fail) {
        overlay.fail(link);
      } else {
        overlay.recover(link);
      }
      const LinkId changed[] = {link};
      const RecomputeStats stats =
          recompute_updown_routes(topo, overlay, state, changed);
      EXPECT_LE(stats.escalated_rows, stats.full_rows) << ftv;
      EXPECT_EQ(stats.full_rows + stats.untouched_rows(), stats.total_dests)
          << ftv;
      EXPECT_LE(stats.patched_switches,
                stats.untouched_rows() + stats.full_rows)
          << ftv;
      sum_full += stats.full_rows;
      sum_escalated += stats.escalated_rows;
      sum_patched += stats.patched_switches;
      ++patches;

      // The patched state matches a from-scratch recompute.
      const RoutingState fresh =
          compute_updown_routes(topo, overlay, DestGranularity::kEdge);
      ASSERT_EQ(fresh.tables.size(), state.tables.size());
      for (std::size_t s = 0; s < fresh.tables.size(); ++s) {
        ASSERT_TRUE(fresh.tables[s] == state.tables[s]) << ftv << " sw " << s;
      }
    }

    const obs::MetricsRegistry& m = obs::metrics();
    EXPECT_EQ(m.counter("routing.incremental_patches"), patches);
    EXPECT_EQ(m.counter("routing.rows_escalated"), sum_escalated);
    EXPECT_EQ(m.counter("routing.rows_patched"), sum_patched);
    // rows_full_recompute accumulates the initial full computes (the churn
    // loop's verification recomputes included) plus each patch's full rows.
    EXPECT_EQ(m.counter("routing.rows_full_recompute"),
              base_full * 7 + sum_full);
  }
}

}  // namespace
}  // namespace aspen
