// Tests for the parallel + incremental up*/down* routing engine: byte
// identity across thread counts, incremental-equals-full after arbitrary
// fault/heal schedules, and the paranoid drift auditor.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "src/aspen/generator.h"
#include "src/routing/audit.h"
#include "src/routing/updown.h"
#include "src/topo/link_state.h"
#include "src/util/rng.h"

namespace aspen {
namespace {

/// Full equality including the digests every engine-produced state carries.
void expect_identical(const RoutingState& a, const RoutingState& b) {
  ASSERT_EQ(a.tables.size(), b.tables.size());
  EXPECT_EQ(a.tables, b.tables);
  EXPECT_EQ(a.digests, b.digests);
}

/// The paper's Fig. 3 shape: 4-level, 6-port trees across the FTV space
/// (k=6 admits per-level fault tolerance 0 or 2).  Invalid combinations
/// are skipped; the guard asserts the sweep is not vacuous.
std::vector<Topology> fig3_trees() {
  std::vector<Topology> trees;
  for (const auto& ftv : std::vector<std::vector<int>>{
           {0, 0, 0}, {0, 2, 0}, {2, 0, 0}, {0, 2, 2}, {2, 2, 0}}) {
    const std::optional<TreeParams> params =
        try_generate_tree(4, 6, FaultToleranceVector(ftv));
    if (params) trees.push_back(Topology::build(*params));
  }
  return trees;
}

TEST(RoutingParallel, ByteIdenticalAcrossThreadCountsOnFig3Trees) {
  const std::vector<Topology> trees = fig3_trees();
  ASSERT_GE(trees.size(), 3u);
  for (const Topology& topo : trees) {
    SCOPED_TRACE(topo.describe());
    const LinkStateOverlay overlay(topo);
    for (const DestGranularity g :
         {DestGranularity::kEdge, DestGranularity::kHost}) {
      const RoutingState serial = compute_updown_routes(topo, overlay, g, 1);
      for (const int threads : {2, 8}) {
        expect_identical(compute_updown_routes(topo, overlay, g, threads),
                         serial);
      }
    }
  }
}

TEST(RoutingParallel, ByteIdenticalAcrossThreadCountsUnderFailures) {
  const Topology topo = Topology::build(fat_tree(3, 6));
  LinkStateOverlay overlay(topo);
  // One casualty per level, host links included.
  for (Level level = 1; level <= topo.levels(); ++level) {
    overlay.fail(topo.links_at_level(level)[0]);
  }
  for (const DestGranularity g :
       {DestGranularity::kEdge, DestGranularity::kHost}) {
    const RoutingState serial = compute_updown_routes(topo, overlay, g, 1);
    for (const int threads : {2, 8}) {
      expect_identical(compute_updown_routes(topo, overlay, g, threads),
                       serial);
    }
  }
}

/// Drives a seeded 50-step fault/heal schedule, patching one maintained
/// state incrementally and recomputing another from scratch at every step.
void run_schedule(const Topology& topo, DestGranularity granularity,
                  std::uint64_t seed) {
  LinkStateOverlay overlay(topo);
  RoutingState state = compute_updown_routes(topo, overlay, granularity, 1);

  std::vector<LinkId> all_links;
  for (Level level = 1; level <= topo.levels(); ++level) {
    for (const LinkId link : topo.links_at_level(level)) {
      all_links.push_back(link);
    }
  }
  std::vector<LinkId> down;

  Rng rng(seed);
  for (int step = 0; step < 50; ++step) {
    SCOPED_TRACE(testing::Message() << "step " << step);
    LinkId flipped = LinkId::invalid();
    if (!down.empty() && rng.chance(0.4)) {
      const std::size_t at = rng.index(down.size());
      flipped = down[at];
      down.erase(down.begin() + static_cast<std::ptrdiff_t>(at));
      overlay.recover(flipped);
    } else {
      // Draw until a live link comes up; the schedule never downs more
      // than a fraction of the fabric, so this terminates fast.
      do {
        flipped = all_links[rng.index(all_links.size())];
      } while (!overlay.is_up(flipped));
      overlay.fail(flipped);
      down.push_back(flipped);
    }
    const LinkId changed[] = {flipped};
    (void)recompute_updown_routes(topo, overlay, state, changed, 1);
    const RoutingState fresh =
        compute_updown_routes(topo, overlay, granularity, 1);
    expect_identical(state, fresh);
  }
}

TEST(RoutingIncremental, MatchesFullAfterEveryScheduleStepEdge) {
  run_schedule(
      Topology::build(generate_tree(4, 6, FaultToleranceVector{0, 2, 0})),
      DestGranularity::kEdge, 42);
}

TEST(RoutingIncremental, MatchesFullAfterEveryScheduleStepHost) {
  run_schedule(Topology::build(fat_tree(3, 6)), DestGranularity::kHost, 42);
}

TEST(RoutingIncremental, MultiLinkBatchAndThreadIndependence) {
  const Topology topo = Topology::build(fat_tree(4, 6));
  LinkStateOverlay overlay(topo);
  const RoutingState before = compute_updown_routes(topo, overlay);

  // Fail a batch spanning every inter-switch level, plus list one link that
  // did not change (the contract allows unchanged listed links).
  std::vector<LinkId> changed;
  for (Level level = 2; level <= topo.levels(); ++level) {
    const auto& links = topo.links_at_level(level);
    changed.push_back(links[0]);
    changed.push_back(links[links.size() / 2]);
  }
  for (const LinkId link : changed) overlay.fail(link);
  changed.push_back(topo.links_at_level(2).back());  // unchanged, still up

  RoutingState serial_patch = before;
  (void)recompute_updown_routes(topo, overlay, serial_patch, changed, 1);
  RoutingState parallel_patch = before;
  (void)recompute_updown_routes(topo, overlay, parallel_patch, changed, 8);

  const RoutingState fresh = compute_updown_routes(topo, overlay);
  expect_identical(serial_patch, fresh);
  expect_identical(parallel_patch, fresh);
}

TEST(RoutingIncremental, RecomputeStatsAccountForEveryRow) {
  const Topology topo = Topology::build(fat_tree(4, 6));
  LinkStateOverlay overlay(topo);
  RoutingState state = compute_updown_routes(topo, overlay);
  const LinkId link = topo.links_at_level(topo.levels())[0];
  overlay.fail(link);
  const LinkId changed[] = {link};
  const RecomputeStats stats =
      recompute_updown_routes(topo, overlay, state, changed, 1);
  EXPECT_EQ(stats.total_dests, topo.params().S);
  EXPECT_GT(stats.full_rows, 0u);
  // A single top-level link dirties only the subtree below it; most rows
  // must survive untouched or the incremental engine is not incremental.
  EXPECT_GT(stats.untouched_rows(), stats.full_rows);
  EXPECT_EQ(stats.full_rows + stats.untouched_rows(), stats.total_dests);
}

TEST(RoutingAudit, AuditIncrementalCleanOnMaintainedState) {
  const Topology topo = Topology::build(fat_tree(3, 6));
  LinkStateOverlay overlay(topo);
  RoutingState state = compute_updown_routes(topo, overlay);
  const LinkId link = topo.links_at_level(2)[0];
  overlay.fail(link);
  const LinkId changed[] = {link};
  (void)recompute_updown_routes(topo, overlay, state, changed, 1);
  const AuditReport report =
      routing::audit_incremental(topo, overlay, state);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(RoutingAudit, AuditIncrementalFlagsCorruptedEntry) {
  const Topology topo = Topology::build(fat_tree(3, 6));
  const LinkStateOverlay overlay(topo);
  RoutingState state = compute_updown_routes(topo, overlay);
  // Corrupt one entry's cost without touching its digest: both the row
  // divergence and (digest now stale) must surface as drift.
  state.table(topo.switch_at(2, 0)).entry(3).cost += 1;
  const AuditReport report =
      routing::audit_incremental(topo, overlay, state);
  EXPECT_TRUE(report.has(AuditCode::kIncrementalDrift)) << report.to_string();
}

TEST(RoutingAudit, AuditIncrementalFlagsStaleDigest) {
  const Topology topo = Topology::build(fat_tree(3, 6));
  const LinkStateOverlay overlay(topo);
  RoutingState state = compute_updown_routes(topo, overlay);
  ASSERT_TRUE(state.has_digests());
  // Tables stay byte-identical to a fresh computation; only the digest is
  // wrong.  The auditor must still notice.
  state.digests[1] ^= 0xDEADBEEFull;
  const AuditReport report =
      routing::audit_incremental(topo, overlay, state);
  EXPECT_TRUE(report.has(AuditCode::kIncrementalDrift)) << report.to_string();
}

TEST(RoutingDigests, ShortCircuitAgreesWithDeepCompare) {
  const Topology topo = Topology::build(fat_tree(3, 6));
  LinkStateOverlay overlay(topo);
  const RoutingState before = compute_updown_routes(topo, overlay);
  overlay.fail(topo.links_at_level(2)[0]);
  const RoutingState after = compute_updown_routes(topo, overlay);

  std::uint64_t deep = 0;
  for (std::size_t s = 0; s < before.tables.size(); ++s) {
    if (!(before.tables[s] == after.tables[s])) ++deep;
  }
  EXPECT_GT(deep, 0u);
  EXPECT_EQ(switches_with_changed_tables(before, after), deep);

  // Same answer when one side carries no digests (hand-built states).
  RoutingState stripped = after;
  stripped.digests.clear();
  EXPECT_EQ(switches_with_changed_tables(before, stripped), deep);

  EXPECT_FALSE(tables_match_by_digest(before, after));
  EXPECT_TRUE(tables_match_by_digest(before, before));
}

}  // namespace
}  // namespace aspen
