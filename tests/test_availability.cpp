// Tests for the §1 availability accounting.
#include <gtest/gtest.h>

#include "src/analysis/availability.h"
#include "src/aspen/fixed_hosts.h"
#include "src/aspen/generator.h"
#include "src/util/status.h"

namespace aspen {
namespace {

TEST(Availability, FiveNinesBudgetIsAboutFiveMinutes) {
  // §1: "an expectation of 5 nines (99.999%) availability corresponds to
  // about 5 minutes of downtime per year."
  const double budget = downtime_budget_s(0.99999);
  EXPECT_NEAR(budget / 60.0, 5.26, 0.05);  // 5.256 minutes
}

TEST(Availability, ThirtyFailuresOfTenSeconds) {
  // "…or 30 failures, each with a 10 second re-convergence time."
  EXPECT_NEAR(affordable_failures_per_year(0.99999, 10.0), 31.6, 0.5);
}

TEST(Availability, NinesRoundTrip) {
  EXPECT_NEAR(nines(0.99999), 5.0, 1e-9);
  EXPECT_NEAR(nines(0.9999), 4.0, 1e-9);
  EXPECT_NEAR(nines(0.9), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(nines(1.0), 12.0);
  EXPECT_DOUBLE_EQ(nines(0.0), 0.0);
}

TEST(Availability, DowntimeAvailabilityInverse) {
  for (const double downtime : {0.0, 100.0, 3600.0, 86400.0}) {
    EXPECT_NEAR(downtime_budget_s(availability_from_downtime(downtime)),
                downtime, 1e-6);
  }
}

TEST(Availability, PreconditionsThrow) {
  EXPECT_THROW((void)availability_from_downtime(-1.0), PreconditionError);
  EXPECT_THROW((void)downtime_budget_s(1.5), PreconditionError);
  EXPECT_THROW((void)nines(-0.1), PreconditionError);
  EXPECT_THROW((void)affordable_failures_per_year(0.99, 0.0), PreconditionError);
}

TEST(Availability, EstimateScalesWithLinksAndRate) {
  const TreeParams tree = fat_tree(3, 8);
  const AvailabilityEstimate one =
      estimate_availability_with_reaction(tree, 0.25, 1000.0);
  EXPECT_DOUBLE_EQ(one.failures_per_year,
                   0.25 * static_cast<double>(tree.total_links()));
  EXPECT_DOUBLE_EQ(one.reaction_s, 1.0);
  EXPECT_DOUBLE_EQ(one.downtime_s_per_year, one.failures_per_year);

  const AvailabilityEstimate twice =
      estimate_availability_with_reaction(tree, 0.5, 1000.0);
  EXPECT_DOUBLE_EQ(twice.downtime_s_per_year,
                   2.0 * one.downtime_s_per_year);
  EXPECT_LT(twice.availability, one.availability);
}

TEST(Availability, AspenBeatsFatTreeDespiteMoreLinks) {
  // §8.2's conclusion in availability terms: the fixed-host Aspen tree has
  // more links (more failures/year) but reacts so much faster that its
  // expected downtime is far lower.
  const TreeParams fat = fat_tree(4, 16);
  const TreeParams aspen = design_fixed_host_tree(4, 16, 1);
  const double rate = 0.25;  // failures per link per year
  const AvailabilityEstimate fat_est = estimate_availability(fat, rate);
  const AvailabilityEstimate aspen_est = estimate_availability(aspen, rate);

  EXPECT_GT(aspen_est.failures_per_year, fat_est.failures_per_year);
  EXPECT_LT(aspen_est.downtime_s_per_year, fat_est.downtime_s_per_year);
  EXPECT_GT(aspen_est.nines, fat_est.nines);
}

TEST(Availability, FullyFaultTolerantTreeHasNoWindow) {
  // FTV <2,2,2>: every failure reacts locally (0 hops → 0 ms window).
  const TreeParams tree = generate_tree(4, 6, FaultToleranceVector{2, 2, 2});
  const AvailabilityEstimate estimate = estimate_availability(tree, 1.0);
  EXPECT_DOUBLE_EQ(estimate.downtime_s_per_year, 0.0);
  EXPECT_DOUBLE_EQ(estimate.nines, 12.0);
}

TEST(Availability, MixedCoverageUsesLspRatesWhereUncovered) {
  // FTV <0,2,0> (n=4): failures at L4 are uncovered → global (LSA-rate)
  // windows dominate the average.
  const TreeParams covered = generate_tree(4, 6, FaultToleranceVector{2, 0, 0});
  const TreeParams partial = generate_tree(4, 6, FaultToleranceVector{0, 2, 0});
  const AvailabilityEstimate c = estimate_availability(covered, 0.25);
  const AvailabilityEstimate p = estimate_availability(partial, 0.25);
  // Same link count; the uncovered tree's mean window is much larger.
  EXPECT_DOUBLE_EQ(c.failures_per_year, p.failures_per_year);
  EXPECT_GT(p.downtime_s_per_year, 5.0 * c.downtime_s_per_year);
}

TEST(Availability, PerLevelRatesValidateInputs) {
  const TreeParams tree = fat_tree(3, 4);
  EXPECT_THROW((void)estimate_availability_per_level(tree, {0.1, 0.1}),
               PreconditionError);
  EXPECT_THROW(
      (void)estimate_availability_per_level(tree, {0.0, 0.1, -1.0, 0.1}),
      PreconditionError);
}

TEST(Availability, PerLevelMatchesUniformWhenRatesEqual) {
  // With equal rates everywhere and a fully covered FTV, the per-level
  // model degenerates to uniform accounting over the same failure count.
  const TreeParams tree = generate_tree(4, 6, FaultToleranceVector{2, 2, 2});
  const std::vector<double> rates(5, 0.25);
  const AvailabilityEstimate per_level =
      estimate_availability_per_level(tree, rates);
  EXPECT_DOUBLE_EQ(per_level.failures_per_year,
                   0.25 * static_cast<double>(tree.total_links()));
}

TEST(Availability, CoreHeavyRatesFavorTopLevelRedundancy) {
  // §10: core links fail most and "benefit most from network redundancy.
  // This aligns well with the subset of Aspen trees highlighted in §8.1."
  // With core-heavy rates, <2,0,0> (top redundancy) must beat <0,0,2>
  // (bottom redundancy) decisively; both support 54 hosts.
  const TreeParams top = generate_tree(4, 6, FaultToleranceVector{2, 0, 0});
  const TreeParams bottom =
      generate_tree(4, 6, FaultToleranceVector{0, 0, 2});
  // Rates skewed to the top two levels (per Gill et al.'s core finding).
  const std::vector<double> core_heavy{0.0, 0.05, 0.1, 0.5, 1.0};
  const AvailabilityEstimate top_est =
      estimate_availability_per_level(top, core_heavy);
  const AvailabilityEstimate bottom_est =
      estimate_availability_per_level(bottom, core_heavy);
  EXPECT_LT(top_est.downtime_s_per_year,
            bottom_est.downtime_s_per_year / 4.0);
  EXPECT_GT(top_est.nines, bottom_est.nines);
}

TEST(Availability, EdgeHeavyRatesShrinkTheGapButTopStillWins) {
  // Flip the skew toward the bottom.  Bottom redundancy now masks the
  // dominant failures locally (0 ms windows) — yet the top-redundant tree
  // *still* wins, because the bottom-redundant tree's uncovered upper
  // levels pay global LSA-rate windows that dwarf everything else.  The
  // §8.1 top-placement guidance is robust to the failure-rate skew; only
  // the size of the gap changes.
  const TreeParams top = generate_tree(4, 6, FaultToleranceVector{2, 0, 0});
  const TreeParams bottom =
      generate_tree(4, 6, FaultToleranceVector{0, 0, 2});
  const std::vector<double> core_heavy{0.0, 0.0, 0.05, 0.1, 0.5};
  const std::vector<double> edge_heavy{0.0, 0.0, 1.0, 0.1, 0.05};

  const auto gap = [&](const std::vector<double>& rates) {
    return estimate_availability_per_level(bottom, rates)
               .downtime_s_per_year /
           estimate_availability_per_level(top, rates).downtime_s_per_year;
  };
  EXPECT_GT(gap(edge_heavy), 1.0);              // top still better
  EXPECT_LT(gap(edge_heavy), gap(core_heavy));  // but the gap shrinks
}

}  // namespace
}  // namespace aspen
