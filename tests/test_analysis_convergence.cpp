// Tests for the analytical convergence models, anchored to every number the
// paper publishes about them.
#include <gtest/gtest.h>

#include "src/analysis/convergence.h"
#include "src/util/status.h"

namespace aspen {
namespace {

TEST(Convergence, DistanceToNearestFaultTolerantLevel) {
  // §9.1: "if there is non-zero fault tolerance between L_i and L_{i-1},
  // then the update propagation distance for failures at L_i is 0 and the
  // distance for failures at L_{i-2} is 2."
  // Entries top-down for n=5 are <c5−1, c4−1, c3−1, c2−1> → FT at L4.
  const FaultToleranceVector ftv{0, 1, 0, 0};
  EXPECT_EQ(update_propagation_distance(ftv, 4), 0);
  EXPECT_EQ(update_propagation_distance(ftv, 2), 2);
  EXPECT_EQ(update_propagation_distance(ftv, 3), 1);
}

TEST(Convergence, GlobalFallbackDistance) {
  // No fault tolerance above the failure: updates must reach the farthest
  // switches — up to the roots, then down to L1.
  const auto fat = FaultToleranceVector::fat_tree(4);
  EXPECT_EQ(update_propagation_distance(fat, 2), 5);  // (4−2)+(4−1)
  EXPECT_EQ(update_propagation_distance(fat, 3), 4);
  EXPECT_EQ(update_propagation_distance(fat, 4), 3);
  EXPECT_EQ(global_update_distance(4, 2), 5);
  EXPECT_EQ(global_update_distance(5, 2), 7);
}

TEST(Convergence, MaxHopsNormalizersMatchFigures) {
  // Fig. 8: "Max Hops=5" (n=4); Fig. 9(a): 7 (n=5); Fig. 9(b): 3 (n=3).
  EXPECT_EQ(max_update_distance(4), 5);
  EXPECT_EQ(max_update_distance(5), 7);
  EXPECT_EQ(max_update_distance(3), 3);
}

TEST(Convergence, PaperAverageValuesForN4K6) {
  // §9.1: "the host counts are all 1/3 … but the average update propagation
  // distance varies from 1 to 2.3 hops" for <0,0,2>, <0,2,0>, <2,0,0>;
  // and "<2,0,0> and <0,2,2> … both have average update propagation
  // distances of 1."
  EXPECT_NEAR(average_update_propagation({0, 0, 2}), 7.0 / 3.0, 1e-12);
  EXPECT_NEAR(average_update_propagation({0, 2, 0}), 4.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(average_update_propagation({2, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(average_update_propagation({0, 2, 2}), 1.0);
  // The fat tree: (5+4+3)/3 = 4.
  EXPECT_DOUBLE_EQ(average_update_propagation({0, 0, 0}), 4.0);
  // Fully fault tolerant: instant everywhere.
  EXPECT_DOUBLE_EQ(average_update_propagation({2, 2, 2}), 0.0);
}

TEST(Convergence, Section81ClaimTopRedundancyHalvesConvergence) {
  // §8.1: "The average convergence propagation distance for this tree
  // [<1,0,0,…>] is less than half of that for a traditional fat tree."
  for (int n = 3; n <= 7; ++n) {
    std::vector<int> entries(static_cast<std::size_t>(n - 1), 0);
    entries[0] = 1;
    const double aspen = average_update_propagation(
        FaultToleranceVector{entries});
    const double fat =
        average_update_propagation(FaultToleranceVector::fat_tree(n));
    EXPECT_LT(aspen, fat / 2.0) << "n=" << n;
  }
}

TEST(Convergence, Section81EightyPercentFasterClaim) {
  // §8.1: "an Aspen tree with n=4, k=16 and FTV=<1,0,0> … converges 80%
  // faster" than the n=4, k=16 fat tree.
  const double aspen = average_update_propagation({1, 0, 0});
  const double fat = average_update_propagation({0, 0, 0});
  EXPECT_NEAR(1.0 - aspen / fat, 0.75, 0.06);  // 1 vs 4 hops → 75%, ≈80%
}

TEST(Convergence, PreconditionsThrow) {
  const auto fat = FaultToleranceVector::fat_tree(4);
  EXPECT_THROW((void)update_propagation_distance(fat, 1), PreconditionError);
  EXPECT_THROW((void)update_propagation_distance(fat, 5), PreconditionError);
  EXPECT_THROW((void)global_update_distance(4, 0), PreconditionError);
  EXPECT_THROW((void)anp_notification_distance(fat, 0), PreconditionError);
}

TEST(Convergence, AnpNotificationDistances) {
  // Host links climb to the roots; covered levels stop at the absorber;
  // uncovered levels stop at the roots (ANP never floods downward).
  const FaultToleranceVector vl2{1, 0, 0};  // n=4, FT at top
  EXPECT_EQ(anp_notification_distance(vl2, 1), 3);
  EXPECT_EQ(anp_notification_distance(vl2, 2), 2);
  EXPECT_EQ(anp_notification_distance(vl2, 3), 1);
  EXPECT_EQ(anp_notification_distance(vl2, 4), 0);

  const auto fat = FaultToleranceVector::fat_tree(3);
  EXPECT_EQ(anp_notification_distance(fat, 2), 1);  // dies at the roots
  EXPECT_EQ(anp_notification_distance(fat, 3), 0);
}

TEST(Convergence, Figure10HopLabels) {
  // Fig. 10(b)/(d) ANP labels: 1.5 hops (n'=4), 2 (n'=5), 2.5 (n'=6).
  EXPECT_DOUBLE_EQ(anp_average_notification_distance({1, 0, 0}), 1.5);
  EXPECT_DOUBLE_EQ(anp_average_notification_distance({1, 0, 0, 0}), 2.0);
  EXPECT_DOUBLE_EQ(anp_average_notification_distance({1, 0, 0, 0, 0}), 2.5);
  // LSP labels: 3 hops (n=3), 4.5 (n=4), 6 (n=5).
  EXPECT_DOUBLE_EQ(lsp_average_flood_distance(3), 3.0);
  EXPECT_DOUBLE_EQ(lsp_average_flood_distance(4), 4.5);
  EXPECT_DOUBLE_EQ(lsp_average_flood_distance(5), 6.0);
}

TEST(Convergence, LspFloodDistanceFormula) {
  EXPECT_EQ(lsp_flood_distance(3, 1), 4);  // (3−1)+(3−1)
  EXPECT_EQ(lsp_flood_distance(3, 3), 2);
  EXPECT_EQ(lsp_flood_distance(5, 2), 7);
}

TEST(Convergence, TimeEstimates) {
  const DelayModel delays;
  // LSP: 300 ms + 1 µs per hop; ANP: 20 ms + 1 µs per hop.
  EXPECT_NEAR(estimate_convergence_ms(3.0, ProtocolKind::kLsp), 900.003,
              1e-9);
  EXPECT_NEAR(estimate_convergence_ms(1.5, ProtocolKind::kAnp), 30.0015,
              1e-9);
  EXPECT_DOUBLE_EQ(estimate_convergence_ms(0.0, ProtocolKind::kAnp), 0.0);
  // "ANP converges orders of magnitude more quickly than LSP."
  EXPECT_GT(estimate_convergence_ms(lsp_average_flood_distance(3),
                                    ProtocolKind::kLsp) /
                estimate_convergence_ms(
                    anp_average_notification_distance({1, 0, 0}),
                    ProtocolKind::kAnp),
            25.0);
}

}  // namespace
}  // namespace aspen
