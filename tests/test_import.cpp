// Tests for custom-wiring import — including the Fig. 6(c) disconnected
// striping that only an explicit link list can express.
#include <gtest/gtest.h>

#include "src/aspen/generator.h"
#include "src/routing/reachability.h"
#include "src/routing/updown.h"
#include "src/topo/export.h"
#include "src/topo/import.h"
#include "src/topo/validate.h"
#include "src/util/status.h"

namespace aspen {
namespace {

std::vector<LinkSpec> links_of(const Topology& topo) {
  return parse_links_csv(to_csv(topo));
}

TEST(Import, CsvRoundTripReproducesTheGraph) {
  const TreeParams params = fat_tree(3, 4);
  const Topology original = Topology::build(params);
  const Topology imported =
      import_topology_csv(params, to_csv(original));

  ASSERT_EQ(imported.num_links(), original.num_links());
  for (std::uint32_t id = 0; id < original.num_links(); ++id) {
    EXPECT_EQ(imported.link(LinkId{id}), original.link(LinkId{id}));
  }
  EXPECT_TRUE(validate_topology(imported).all_ok());
}

TEST(Import, RoundTripOfAspenTree) {
  const TreeParams params = generate_tree(4, 4, FaultToleranceVector{1, 0, 0});
  const Topology original = Topology::build(params);
  const Topology imported = import_topology_csv(params, to_csv(original));
  const ValidationReport report = validate_topology(imported);
  EXPECT_TRUE(report.all_ok());
  // Routing works identically.
  const RoutingState routes = compute_updown_routes(imported);
  const TableRouter router(routes);
  const LinkStateOverlay intact(imported);
  EXPECT_EQ(measure_all_pairs(imported, router, intact).undelivered(), 0u);
}

TEST(Import, RejectsWrongLinkCount) {
  const TreeParams params = fat_tree(3, 4);
  auto links = links_of(Topology::build(params));
  links.pop_back();
  EXPECT_THROW((void)build_custom_topology(params, links),
               PreconditionError);
}

TEST(Import, RejectsNonAdjacentLevels) {
  const TreeParams params = fat_tree(3, 4);
  const Topology topo = Topology::build(params);
  auto links = links_of(topo);
  // Rewire an L3→L2 link to point at an L1 switch instead.
  for (LinkSpec& spec : links) {
    if (!spec.lower_is_host &&
        topo.level_of(spec.upper) == 3) {
      spec.lower = 0;  // an L1 switch
      break;
    }
  }
  EXPECT_THROW((void)build_custom_topology(params, links),
               PreconditionError);
}

TEST(Import, RejectsPortOveruse) {
  const TreeParams params = fat_tree(3, 4);
  const Topology topo = Topology::build(params);
  auto links = links_of(topo);
  // Point two different cores' links at the same agg port set: moving one
  // link's lower endpoint onto a switch that is already full.
  LinkSpec* first = nullptr;
  for (LinkSpec& spec : links) {
    if (spec.lower_is_host || topo.level_of(spec.upper) != 3) continue;
    if (first == nullptr) {
      first = &spec;
    } else if (spec.lower != first->lower) {
      spec.lower = first->lower;
      break;
    }
  }
  EXPECT_THROW((void)build_custom_topology(params, links),
               PreconditionError);
}

TEST(Import, RejectsMalformedCsv) {
  EXPECT_THROW((void)parse_links_csv("not a header\n1,s0,h0,1\n"),
               PreconditionError);
  EXPECT_THROW((void)parse_links_csv("link_id,upper,lower,level\nbroken\n"),
               PreconditionError);
  EXPECT_THROW(
      (void)parse_links_csv("link_id,upper,lower,level\n0,h0,s1,1\n"),
      PreconditionError);
}

// Rewires a 3-level fat tree into the Fig. 6(c) pattern: swap two cores'
// links so the shaded cores no longer reach every L2 pod — "the two shaded
// L3 switches do not connect to all L2 pods."
TEST(Import, Figure6cDisconnectedStripingIsCaught) {
  const TreeParams params = fat_tree(3, 4);
  const Topology topo = Topology::build(params);
  auto links = links_of(topo);

  // Core c0 connects once to each of the four pods; core c1 likewise.
  // Give c0 two links into pod 0 (members 0 and 1) and c1 none, by swapping
  // the lower endpoints of c0→pod0 and c1→pod0 links' *pod* assignment:
  // concretely, point c0's pod-1 link at pod 0's other member, and c1's
  // pod-0 link at pod 1's other member.
  const SwitchId c0 = topo.switch_at(3, 0);
  const SwitchId c1 = topo.switch_at(3, 1);
  const auto member = [&](std::uint64_t pod, std::uint64_t m) {
    return static_cast<std::uint32_t>(topo.switch_at(2, pod * 2 + m).value());
  };
  LinkSpec* c0_pod1 = nullptr;
  LinkSpec* c1_pod0 = nullptr;
  for (LinkSpec& spec : links) {
    if (spec.lower_is_host) continue;
    if (spec.upper == c0 && spec.lower / 2 != 0 &&
        topo.pod_of(SwitchId{spec.lower}) == PodId{1}) {
      c0_pod1 = &spec;
    }
    if (spec.upper == c1 && topo.pod_of(SwitchId{spec.lower}) == PodId{0}) {
      c1_pod0 = &spec;
    }
  }
  ASSERT_NE(c0_pod1, nullptr);
  ASSERT_NE(c1_pod0, nullptr);
  // Swap pod targets while keeping each agg's port count intact: c0's
  // pod-1 link (member 0) moves to pod 0's member 1, and c1's pod-0 link
  // (member 1) moves to pod 1's member 0.
  c0_pod1->lower = member(0, 1);
  c1_pod0->lower = member(1, 0);

  const Topology rigged = build_custom_topology(params, links);
  const ValidationReport report = validate_topology(rigged);
  EXPECT_TRUE(report.ports_ok);
  EXPECT_FALSE(report.top_level_coverage);       // the §4 constraint fails
  EXPECT_FALSE(report.uniform_fault_tolerance);  // c_3 no longer uniform
  EXPECT_FALSE(report.problems.empty());

  // And the structural consequence: some flows lose all shortest paths
  // through the miswired cores — global routing still works (up*/down*
  // avoids them), but the tree no longer guarantees every root reaches
  // every pod.
  const RoutingState routes = compute_updown_routes(rigged);
  bool some_core_misses_a_pod = false;
  for (std::uint64_t c = 0; c < params.switches_at_level(3); ++c) {
    const SwitchId core = rigged.switch_at(3, c);
    for (std::uint64_t e = 0; e < params.S; ++e) {
      if (!routes.table(core).entry(e).reachable() &&
          routes.table(core).entry(e).cost != 0) {
        some_core_misses_a_pod = true;
      }
    }
  }
  EXPECT_TRUE(some_core_misses_a_pod);
}

TEST(Import, HostMustAttachToItsNumberingEdge) {
  const TreeParams params = fat_tree(3, 4);
  auto links = links_of(Topology::build(params));
  for (LinkSpec& spec : links) {
    if (spec.lower_is_host && spec.lower == 0) {
      spec.upper = SwitchId{1};  // host 0 belongs to edge 0
      break;
    }
  }
  EXPECT_THROW((void)build_custom_topology(params, links),
               PreconditionError);
}

}  // namespace
}  // namespace aspen
