// Tests for striping policies and the §7 validator (Figure 6).
#include <gtest/gtest.h>

#include <set>

#include "src/aspen/generator.h"
#include "src/topo/striping.h"
#include "src/topo/topology.h"
#include "src/topo/validate.h"
#include "src/util/status.h"

namespace aspen {
namespace {

Topology build(int n, int k, std::vector<int> ftv, StripingConfig cfg = {}) {
  return Topology::build(generate_tree(n, k, FaultToleranceVector(ftv)), cfg);
}

TEST(Striping, StandardFatTreeIsValid) {
  const ValidationReport report = validate_topology(build(3, 4, {0, 0}));
  EXPECT_TRUE(report.all_ok()) << report.problems.size() << " problems";
  EXPECT_TRUE(report.ports_ok);
  EXPECT_TRUE(report.uniform_fault_tolerance);
  EXPECT_TRUE(report.top_level_coverage);
  EXPECT_TRUE(report.anp_striping_ok);
  EXPECT_EQ(report.parallel_link_pairs, 0u);
  EXPECT_TRUE(report.problems.empty());
}

TEST(Striping, AllKindsValidOnFatTree) {
  // With c_i = 1 everywhere, every policy degenerates to a valid wiring.
  for (const auto kind :
       {StripingKind::kStandard, StripingKind::kRotated,
        StripingKind::kRandom, StripingKind::kParallelHeavy}) {
    StripingConfig cfg;
    cfg.kind = kind;
    cfg.seed = 3;
    const ValidationReport report = validate_topology(build(3, 4, {0, 0}, cfg));
    EXPECT_TRUE(report.ports_ok) << to_string(kind);
    EXPECT_TRUE(report.uniform_fault_tolerance) << to_string(kind);
    EXPECT_TRUE(report.top_level_coverage) << to_string(kind);
  }
}

TEST(Striping, StandardAndRotatedValidOnAspenTrees) {
  for (const auto kind : {StripingKind::kStandard, StripingKind::kRotated}) {
    StripingConfig cfg;
    cfg.kind = kind;
    const ValidationReport report =
        validate_topology(build(4, 4, {1, 0, 0}, cfg));
    EXPECT_TRUE(report.all_ok())
        << to_string(kind) << ": "
        << (report.problems.empty() ? "" : report.problems.front());
  }
}

TEST(Striping, ParallelHeavyDefeatsFaultTolerance) {
  // Figure 6(d): all redundant links land on a single pod member, so the
  // §7 shared-ancestor requirement fails wherever it matters.
  StripingConfig cfg;
  cfg.kind = StripingKind::kParallelHeavy;
  const ValidationReport report = validate_topology(build(4, 4, {1, 0, 0}, cfg));
  EXPECT_TRUE(report.ports_ok);
  EXPECT_FALSE(report.anp_striping_ok);
  EXPECT_GT(report.parallel_link_pairs, 0u);
  EXPECT_FALSE(report.problems.empty());
}

TEST(Striping, RandomStripingIsDeterministicPerSeed) {
  StripingConfig cfg;
  cfg.kind = StripingKind::kRandom;
  cfg.seed = 99;
  const Topology a = build(3, 4, {1, 0}, cfg);
  const Topology b = build(3, 4, {1, 0}, cfg);
  for (std::uint32_t id = 0; id < a.num_links(); ++id) {
    EXPECT_EQ(a.link(LinkId{id}), b.link(LinkId{id}));
  }
  cfg.seed = 100;
  const Topology c = build(3, 4, {1, 0}, cfg);
  bool any_difference = false;
  for (std::uint32_t id = 0; id < a.num_links(); ++id) {
    if (!(a.link(LinkId{id}) == c.link(LinkId{id}))) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Striping, RandomStripingKeepsPortBudgets) {
  StripingConfig cfg;
  cfg.kind = StripingKind::kRandom;
  cfg.seed = 5;
  const ValidationReport report = validate_topology(build(4, 4, {1, 0, 0}, cfg));
  EXPECT_TRUE(report.ports_ok);
  EXPECT_TRUE(report.uniform_fault_tolerance);
  EXPECT_TRUE(report.top_level_coverage);
}

TEST(Striping, StandardPatternMatchesFormula) {
  const TreeParams params = fat_tree(3, 4);
  const Striper striper(params, {});
  // L2: c=1, child pods have 1 member each.
  EXPECT_EQ(striper.child_member(2, 0, 0, 0, 0), 0u);
  // L3: c=1, child pods have m_2=2 members; member a lands on a mod 2.
  EXPECT_EQ(striper.child_member(3, 0, 0, 0, 0), 0u);
  EXPECT_EQ(striper.child_member(3, 0, 0, 1, 0), 1u);
  EXPECT_EQ(striper.child_member(3, 0, 0, 2, 0), 0u);
  EXPECT_EQ(striper.child_member(3, 0, 0, 3, 0), 1u);
}

TEST(Striping, RotatedShiftsByChildOrdinal) {
  const TreeParams params = fat_tree(3, 4);
  StripingConfig cfg;
  cfg.kind = StripingKind::kRotated;
  const Striper striper(params, cfg);
  EXPECT_EQ(striper.child_member(3, 0, 0, 0, 0), 0u);
  EXPECT_EQ(striper.child_member(3, 0, 1, 0, 0), 1u);
  EXPECT_EQ(striper.child_member(3, 0, 2, 0, 0), 0u);
}

TEST(Striping, OutOfRangeArgumentsThrow) {
  const TreeParams params = fat_tree(3, 4);
  const Striper striper(params, {});
  EXPECT_THROW((void)striper.child_member(1, 0, 0, 0, 0), PreconditionError);
  EXPECT_THROW((void)striper.child_member(4, 0, 0, 0, 0), PreconditionError);
  EXPECT_THROW((void)striper.child_member(3, 1, 0, 0, 0), PreconditionError);
  EXPECT_THROW((void)striper.child_member(3, 0, 9, 0, 0), PreconditionError);
  EXPECT_THROW((void)striper.child_member(3, 0, 0, 9, 0), PreconditionError);
  EXPECT_THROW((void)striper.child_member(3, 0, 0, 0, 9), PreconditionError);
}

TEST(Striping, ForcedParallelLinksAreCountedNotFatal) {
  // Figure 3(e)-style tree: c exceeds the child pod size, so parallel links
  // are unavoidable; the validator reports them without failing the §7
  // check (pods of size 1 have no "other member" to share ancestors with).
  const ValidationReport report = validate_topology(build(4, 6, {2, 2, 2}));
  EXPECT_TRUE(report.ports_ok);
  EXPECT_TRUE(report.uniform_fault_tolerance);
  EXPECT_GT(report.parallel_link_pairs, 0u);
  EXPECT_TRUE(report.anp_striping_ok);  // vacuous: every pod has one member
  EXPECT_FALSE(report.bottleneck_pod_levels.empty());  // §8.4 pathology
}

TEST(Striping, BottleneckPodsDetected) {
  // §8.4: "pods with only a single switch at high levels in the tree."
  const ValidationReport healthy = validate_topology(build(3, 4, {0, 0}));
  EXPECT_TRUE(healthy.bottleneck_pod_levels.empty());

  const ValidationReport degenerate = validate_topology(build(4, 6, {2, 2, 2}));
  EXPECT_FALSE(degenerate.bottleneck_pod_levels.empty());
}

TEST(Striping, ConfigToString) {
  StripingConfig cfg;
  EXPECT_EQ(cfg.to_string(), "standard");
  cfg.kind = StripingKind::kRandom;
  cfg.seed = 12;
  EXPECT_EQ(cfg.to_string(), "random(seed=12)");
  cfg.kind = StripingKind::kParallelHeavy;
  EXPECT_EQ(cfg.to_string(), "parallel-heavy");
  cfg.kind = StripingKind::kRotated;
  EXPECT_EQ(cfg.to_string(), "rotated");
}

TEST(Striping, EveryChildReceivesFullUplinkBudget) {
  // The wiring invariant that makes striping port-feasible.
  for (const auto kind : {StripingKind::kStandard, StripingKind::kRotated,
                          StripingKind::kRandom}) {
    StripingConfig cfg;
    cfg.kind = kind;
    cfg.seed = 21;
    const Topology topo = build(4, 4, {0, 1, 0}, cfg);
    for (std::uint32_t v = 0; v < topo.num_switches(); ++v) {
      const SwitchId s{v};
      if (topo.level_of(s) == topo.levels()) continue;
      EXPECT_EQ(topo.up_neighbors(s).size(), 2u)
          << to_string(kind) << " " << to_string(s);
    }
  }
}

}  // namespace
}  // namespace aspen
