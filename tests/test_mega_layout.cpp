// Layout-equivalence suite for the flat memory layout (Experiment X14).
//
// The CSR adjacency + arena-backed forwarding tables must be invisible to
// every observable the rest of the stack reads: per-switch digests, state
// fingerprints, packet walks, and the table auditor — at any thread count,
// on intact and randomly degraded fabrics, and across long incremental
// fault/heal schedules.  The anchors are fingerprints recorded from the
// pre-arena (per-entry vector) layout, so any bit drift in hop order,
// cost, or digest folding fails here before it can silently invalidate
// the recorded experiment baselines.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "src/aspen/generator.h"
#include "src/routing/audit.h"
#include "src/routing/packet_walk.h"
#include "src/routing/updown.h"
#include "src/topo/link_state.h"
#include "src/util/rng.h"

namespace aspen {
namespace {

struct Fig3Golden {
  std::vector<int> ftv;
  std::uint64_t edge_fp;
  std::uint64_t host_fp;
};

/// State fingerprints of the paper's Fig. 3 trees (4-level, 6-port, FTV
/// sweep), recorded from the seed layout before the arena refactor.
const std::vector<Fig3Golden>& fig3_goldens() {
  static const std::vector<Fig3Golden> goldens = {
      {{0, 0, 0}, 0xde549d516f884ff8ull, 0xad4e6dd71c43a945ull},
      {{0, 2, 0}, 0x735effc771039226ull, 0x67f3e484cf4f898cull},
      {{2, 0, 0}, 0x5e0703e4b36c52dcull, 0x5c4110d7469483faull},
      {{0, 2, 2}, 0x0d9193354287724dull, 0xdf13dc5a272a8b1eull},
      {{2, 2, 0}, 0x151c09e09a59bd39ull, 0x2baaf6525f779628ull},
  };
  return goldens;
}

/// Fails `count` distinct random links; returns the overlay.
LinkStateOverlay random_overlay(const Topology& topo, std::uint64_t count,
                                Rng& rng) {
  LinkStateOverlay overlay(topo);
  std::uint64_t failed = 0;
  while (failed < count) {
    const LinkId link{static_cast<std::uint32_t>(
        rng.uniform(0, static_cast<std::int64_t>(topo.num_links()) - 1))};
    if (overlay.fail(link)) ++failed;
  }
  return overlay;
}

TEST(MegaLayout, Fig3FingerprintsMatchSeedLayout) {
  for (const Fig3Golden& golden : fig3_goldens()) {
    const std::optional<TreeParams> params =
        try_generate_tree(4, 6, FaultToleranceVector(golden.ftv));
    ASSERT_TRUE(params.has_value());
    const Topology topo = Topology::build(*params);
    const LinkStateOverlay intact(topo);
    SCOPED_TRACE(topo.describe());
    const RoutingState edge =
        compute_updown_routes(topo, intact, DestGranularity::kEdge, 1);
    const RoutingState host =
        compute_updown_routes(topo, intact, DestGranularity::kHost, 1);
    EXPECT_EQ(state_fingerprint(edge), golden.edge_fp);
    EXPECT_EQ(state_fingerprint(host), golden.host_fp);
  }
}

TEST(MegaLayout, DigestsThreadInvariantOnRandomOverlays) {
  const Topology topo =
      Topology::build(generate_tree(4, 6, FaultToleranceVector{0, 2, 0}));
  Rng rng(0xA57E'11u);
  for (const std::uint64_t failures : {0ull, 3ull, 12ull}) {
    const LinkStateOverlay overlay = random_overlay(topo, failures, rng);
    SCOPED_TRACE(failures);
    const RoutingState serial =
        compute_updown_routes(topo, overlay, DestGranularity::kEdge, 1);
    for (const int threads : {2, 4, 8}) {
      const RoutingState threaded =
          compute_updown_routes(topo, overlay, DestGranularity::kEdge,
                                threads);
      ASSERT_EQ(threaded.digests, serial.digests) << "threads " << threads;
      EXPECT_TRUE(threaded.tables == serial.tables) << "threads " << threads;
      EXPECT_EQ(state_fingerprint(threaded), state_fingerprint(serial));
    }
  }
}

TEST(MegaLayout, HostGranularityThreadInvariant) {
  const Topology topo =
      Topology::build(generate_tree(4, 6, FaultToleranceVector{2, 0, 0}));
  Rng rng(0xBEE5u);
  const LinkStateOverlay overlay = random_overlay(topo, 5, rng);
  const RoutingState serial =
      compute_updown_routes(topo, overlay, DestGranularity::kHost, 1);
  for (const int threads : {2, 4, 8}) {
    const RoutingState threaded =
        compute_updown_routes(topo, overlay, DestGranularity::kHost, threads);
    EXPECT_EQ(threaded.digests, serial.digests) << "threads " << threads;
    EXPECT_TRUE(threaded.tables == serial.tables) << "threads " << threads;
  }
}

TEST(MegaLayout, AuditCleanOnDegradedFabrics) {
  const Topology topo =
      Topology::build(generate_tree(4, 6, FaultToleranceVector{0, 2, 2}));
  Rng rng(0xC0FFEEu);
  for (int round = 0; round < 3; ++round) {
    const LinkStateOverlay overlay = random_overlay(topo, 8, rng);
    const RoutingState state =
        compute_updown_routes(topo, overlay, DestGranularity::kEdge, 4);
    const AuditReport report = routing::audit_tables(topo, state, overlay);
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
}

TEST(MegaLayout, PacketWalksIdenticalAcrossThreadCounts) {
  const Topology topo =
      Topology::build(generate_tree(4, 6, FaultToleranceVector{0, 2, 0}));
  Rng rng(0xD1CEu);
  const LinkStateOverlay overlay = random_overlay(topo, 6, rng);
  const RoutingState serial =
      compute_updown_routes(topo, overlay, DestGranularity::kEdge, 1);
  const RoutingState threaded =
      compute_updown_routes(topo, overlay, DestGranularity::kEdge, 4);
  const TableRouter router_a(serial);
  const TableRouter router_b(threaded);
  for (int flow = 0; flow < 64; ++flow) {
    const HostId src{static_cast<std::uint32_t>(
        rng.uniform(0, static_cast<std::int64_t>(topo.num_hosts()) - 1))};
    const HostId dst{static_cast<std::uint32_t>(
        rng.uniform(0, static_cast<std::int64_t>(topo.num_hosts()) - 1))};
    if (src == dst) continue;
    WalkOptions options;
    options.flow_seed = static_cast<std::uint64_t>(flow);
    const WalkResult a = walk_packet(topo, router_a, overlay, src, dst,
                                     options);
    const WalkResult b = walk_packet(topo, router_b, overlay, src, dst,
                                     options);
    ASSERT_EQ(a.status, b.status) << "flow " << flow;
    EXPECT_EQ(a.path, b.path) << "flow " << flow;
  }
}

TEST(MegaLayout, FiftyStepChurnIncrementalEqualsFull) {
  const Topology topo =
      Topology::build(generate_tree(4, 6, FaultToleranceVector{0, 2, 0}));
  LinkStateOverlay overlay(topo);
  RoutingState state =
      compute_updown_routes(topo, overlay, DestGranularity::kEdge, 2);
  Rng rng(0x5057E9ull);
  for (int step = 0; step < 50; ++step) {
    const LinkId link{static_cast<std::uint32_t>(
        rng.uniform(0, static_cast<std::int64_t>(topo.num_links()) - 1))};
    if (overlay.is_up(link)) {
      overlay.fail(link);
    } else {
      overlay.recover(link);
    }
    const LinkId changed[] = {link};
    (void)recompute_updown_routes(topo, overlay, state, changed, 2);
    const RoutingState fresh =
        compute_updown_routes(topo, overlay, DestGranularity::kEdge, 2);
    ASSERT_TRUE(tables_match_by_digest(state, fresh)) << "step " << step;
    if (step % 10 == 9) {
      // Periodic deep compare: digests are probabilistic one way.
      ASSERT_TRUE(state.tables == fresh.tables) << "step " << step;
    }
  }
}

}  // namespace
}  // namespace aspen
