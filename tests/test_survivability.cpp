// Tests for the Monte Carlo survivability engine and its supporting cast:
// seed-stream derivation, correlated-failure domains, warm routing deltas,
// Wilson intervals, the exact small-tree oracle, quarantine, and the
// byte-identity contracts (thread counts, kill-and-resume).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "src/analysis/survivability.h"
#include "src/aspen/generator.h"
#include "src/fault/chaos.h"
#include "src/fault/failure_domains.h"
#include "src/fault/seed.h"
#include "src/routing/audit.h"
#include "src/routing/delta.h"
#include "src/routing/updown.h"
#include "src/topo/topology.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace aspen {
namespace {

Topology small_fat_tree() {
  // 3-level, 4-port fat tree: 20 switches, 8 edge switches, 32 inter-switch
  // links.  Small enough for exhaustive 2-link enumeration.
  return Topology::build(generate_tree(3, 4, FaultToleranceVector({0, 0})));
}

Topology fig3_tree() {
  // A Fig. 3 tree (4-level, 6-port) with top-level fault tolerance.
  return Topology::build(generate_tree(4, 6, FaultToleranceVector({0, 0, 2})));
}

std::uint64_t inter_switch_links(const Topology& topo) {
  return fault::FailureDomainModel::independent(topo).size();
}

// ---- Seed-stream derivation ---------------------------------------------

TEST(DeriveStreamSeed, IsDeterministicAndTagSeparated) {
  const std::uint64_t a = fault::derive_stream_seed(1, fault::kStreamChaosFlows);
  EXPECT_EQ(a, fault::derive_stream_seed(1, fault::kStreamChaosFlows));
  EXPECT_NE(a, fault::derive_stream_seed(1, fault::kStreamChaosHealth));
  EXPECT_NE(a, fault::derive_stream_seed(2, fault::kStreamChaosFlows));
}

TEST(DeriveStreamSeed, IsConstexprAndNonTrivial) {
  static_assert(fault::derive_stream_seed(0, 0) != 0);
  static_assert(fault::derive_stream_seed(0, 0) !=
                fault::derive_stream_seed(0, 1));
  // Zero base must not collapse to a weak stream.
  EXPECT_NE(fault::derive_stream_seed(0, fault::kStreamSurvivability), 0u);
}

// ---- Failure domains ----------------------------------------------------

TEST(FailureDomains, IndependentIsOneDomainPerInterSwitchLink) {
  const Topology topo = small_fat_tree();
  const auto model = fault::FailureDomainModel::independent(topo);
  EXPECT_GT(model.size(), 0u);
  EXPECT_EQ(model.total_links(), model.size());
  EXPECT_EQ(model.max_domain_links(), 1u);
  std::set<std::uint32_t> seen;
  for (const auto& d : model.domains()) {
    EXPECT_EQ(d.kind, fault::DomainKind::kLink);
    ASSERT_EQ(d.links.size(), 1u);
    EXPECT_TRUE(seen.insert(d.links[0].value()).second);
  }
  EXPECT_TRUE(model.check(topo).empty());
}

TEST(FailureDomains, RackDomainsHoldEveryEdgeUplink) {
  const Topology topo = small_fat_tree();
  const auto model = fault::FailureDomainModel::racks(topo);
  // One domain per edge (L1) switch, each holding its k/2 = 2 uplinks.
  EXPECT_EQ(model.size(), 8u);
  for (const auto& d : model.domains()) {
    EXPECT_EQ(d.kind, fault::DomainKind::kRack);
    EXPECT_EQ(d.links.size(), 2u);
    EXPECT_FALSE(d.name.empty());
  }
  EXPECT_TRUE(model.check(topo).empty());
}

TEST(FailureDomains, PowerFeedAndLinecardModelsAreCoherent) {
  const Topology topo = fig3_tree();
  const auto feeds = fault::FailureDomainModel::power_feeds(topo);
  EXPECT_GT(feeds.size(), 0u);
  EXPECT_TRUE(feeds.check(topo).empty());
  for (const auto& d : feeds.domains()) {
    EXPECT_EQ(d.kind, fault::DomainKind::kPowerFeed);
  }
  const auto cards = fault::FailureDomainModel::linecards(topo, 2);
  EXPECT_GT(cards.size(), 0u);
  EXPECT_TRUE(cards.check(topo).empty());
  for (const auto& d : cards.domains()) {
    EXPECT_EQ(d.kind, fault::DomainKind::kLinecard);
    EXPECT_LE(d.links.size(), 2u);
  }
  // Every inter-switch link is on some linecard.
  std::uint64_t covered = 0;
  for (const auto& d : cards.domains()) covered += d.links.size();
  EXPECT_GE(covered, inter_switch_links(topo));
}

TEST(FailureDomains, ParseAcceptsSpecsAndRejectsGarbage) {
  const Topology topo = small_fat_tree();
  EXPECT_EQ(fault::FailureDomainModel::parse(topo, "independent").size(),
            inter_switch_links(topo));
  EXPECT_EQ(fault::FailureDomainModel::parse(topo, "rack").size(), 8u);
  EXPECT_GT(fault::FailureDomainModel::parse(topo, "feed").size(), 0u);
  EXPECT_GT(fault::FailureDomainModel::parse(topo, "linecard:2").size(), 0u);
  EXPECT_THROW((void)fault::FailureDomainModel::parse(topo, "bogus"),
               PreconditionError);
}

TEST(FailureDomains, DrawOrderIsASeededPermutation) {
  const Topology topo = small_fat_tree();
  const auto model = fault::FailureDomainModel::independent(topo);
  Rng rng(99);
  const std::vector<std::uint32_t> order = model.draw_order(rng);
  EXPECT_EQ(order.size(), model.size());
  std::vector<std::uint32_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (std::uint32_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
  Rng same(99);
  EXPECT_EQ(model.draw_order(same), order);
}

TEST(FailureDomains, MergeBuildsComposites) {
  const Topology topo = small_fat_tree();
  auto composite = fault::FailureDomainModel::racks(topo);
  const auto cards = fault::FailureDomainModel::linecards(topo, 2);
  composite.merge(cards);
  EXPECT_EQ(composite.size(), 8u + cards.size());
  EXPECT_TRUE(composite.check(topo).empty());
}

TEST(FailureDomains, KindNamesAreStable) {
  EXPECT_STREQ(fault::to_cstring(fault::DomainKind::kLink), "link");
  EXPECT_STREQ(fault::to_cstring(fault::DomainKind::kRack), "rack");
  EXPECT_STREQ(fault::to_cstring(fault::DomainKind::kPowerFeed), "power_feed");
  EXPECT_STREQ(fault::to_cstring(fault::DomainKind::kLinecard), "linecard");
}

TEST(FailureDomains, CheckReportsEveryIncoherence) {
  const Topology topo = small_fat_tree();
  // A host link (lower endpoint is a host) — routing-invisible, so any
  // domain naming one is incoherent.
  LinkId host_link = LinkId::invalid();
  LinkId switch_link = LinkId::invalid();
  for (std::uint32_t l = 0; l < topo.num_links(); ++l) {
    const LinkId link{l};
    if (topo.is_switch_node(topo.link(link).lower)) {
      if (switch_link == LinkId::invalid()) switch_link = link;
    } else if (host_link == LinkId::invalid()) {
      host_link = link;
    }
  }
  ASSERT_NE(host_link, LinkId::invalid());
  ASSERT_NE(switch_link, LinkId::invalid());

  std::vector<fault::FailureDomain> bad;
  bad.push_back({fault::DomainKind::kRack, {}, "empty"});
  bad.push_back({fault::DomainKind::kLink,
                 {LinkId{static_cast<std::uint32_t>(topo.num_links()) + 5}},
                 "range"});
  bad.push_back({fault::DomainKind::kLinecard, {host_link}, "host"});
  bad.push_back({fault::DomainKind::kPowerFeed,
                 {switch_link, switch_link},
                 "dup"});
  const auto model = fault::FailureDomainModel::from_domains(std::move(bad));
  const std::vector<std::string> problems = model.check(topo);
  ASSERT_EQ(problems.size(), 4u);
  EXPECT_NE(problems[0].find("empty domain"), std::string::npos);
  EXPECT_NE(problems[1].find("out of range"), std::string::npos);
  EXPECT_NE(problems[2].find("host link"), std::string::npos);
  EXPECT_NE(problems[3].find("unsorted or duplicated"), std::string::npos);
}

TEST(FailureDomains, FromDomainsPreservesCatalogOrder) {
  const Topology topo = small_fat_tree();
  const auto racks = fault::FailureDomainModel::racks(topo);
  auto copy = fault::FailureDomainModel::from_domains(
      {racks.domains().begin(), racks.domains().end()});
  EXPECT_EQ(copy.size(), racks.size());
  EXPECT_EQ(copy.total_links(), racks.total_links());
  EXPECT_TRUE(copy.check(topo).empty());
  EXPECT_EQ(copy.domain(0).name, racks.domain(0).name);
}

// ---- Warm routing deltas ------------------------------------------------

TEST(DeltaSession, ApplyMatchesFullRecompute) {
  const Topology topo = small_fat_tree();
  routing::DeltaSession session(topo, DestGranularity::kEdge);
  const auto model = fault::FailureDomainModel::racks(topo);
  session.apply(std::span<const LinkId>(model.domain(0).links));
  const RoutingState fresh = compute_updown_routes(
      topo, session.overlay(), DestGranularity::kEdge, 1);
  EXPECT_TRUE(tables_match_by_digest(session.state(), fresh));
  EXPECT_EQ(session.failed().size(), model.domain(0).links.size());
}

TEST(DeltaSession, RollbackRestoresBaselineByteForByte) {
  const Topology topo = small_fat_tree();
  routing::DeltaSession session(topo, DestGranularity::kEdge);
  const auto model = fault::FailureDomainModel::independent(topo);
  Rng rng(5);
  for (int trial = 0; trial < 8; ++trial) {
    const auto& d = model.domain(model.draw(rng));
    session.apply(std::span<const LinkId>(d.links));
    EXPECT_TRUE(session.rollback());
    EXPECT_TRUE(session.state().tables == session.baseline().tables);
    EXPECT_TRUE(session.state().digests == session.baseline().digests);
  }
  EXPECT_EQ(session.rebuilds(), 0u);
}

TEST(DeltaSession, CorruptionIsInvisibleToDigestsButCaughtByAudit) {
  const Topology topo = small_fat_tree();
  routing::DeltaSession session(topo, DestGranularity::kEdge);
  session.corrupt_for_test();
  // The digest was deliberately left stale, so the cheap digest compare
  // cannot see the corruption...
  EXPECT_TRUE(tables_match_by_digest(session.state(), session.baseline()));
  // ...but the from-scratch audit does.
  const AuditReport report = routing::audit_incremental(
      topo, session.overlay(), session.state(), 1);
  EXPECT_FALSE(report.ok());
  // rebuild() is the quarantine path back to a trustworthy state.
  session.rebuild();
  EXPECT_TRUE(routing::audit_incremental(topo, session.overlay(),
                                         session.state(), 1)
                  .ok());
}

// ---- Wilson intervals ---------------------------------------------------

TEST(Wilson, DegenerateAndBoundaryCases) {
  const WilsonInterval empty = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(empty.lo, 0.0);
  EXPECT_DOUBLE_EQ(empty.hi, 1.0);
  const WilsonInterval all = wilson_interval(100, 100);
  EXPECT_DOUBLE_EQ(all.center, 1.0);
  EXPECT_GT(all.lo, 0.9);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);
  const WilsonInterval none = wilson_interval(0, 100);
  EXPECT_DOUBLE_EQ(none.center, 0.0);
  EXPECT_LT(none.hi, 0.1);
  EXPECT_DOUBLE_EQ(none.lo, 0.0);
}

TEST(Wilson, IntervalNarrowsWithTrials) {
  const WilsonInterval small = wilson_interval(50, 100);
  const WilsonInterval large = wilson_interval(5'000, 10'000);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
  EXPECT_TRUE(small.contains(0.5));
  EXPECT_TRUE(large.contains(0.5));
}

// ---- Exact oracle vs Monte Carlo ---------------------------------------

TEST(Survivability, ExactOracleEnumeratesAllFaultSets) {
  const Topology topo = small_fat_tree();
  const std::uint64_t links = inter_switch_links(topo);
  const ExactSurvivability one = exact_connected_probability(topo, 1);
  EXPECT_EQ(one.fault_sets, links);
  // A fat tree loses no edge pair to any single inter-switch link failure.
  EXPECT_DOUBLE_EQ(one.p_connected(), 1.0);
  const ExactSurvivability two = exact_connected_probability(topo, 2);
  EXPECT_EQ(two.fault_sets, links * (links - 1) / 2);
  // Both uplinks of one edge switch disconnect it: strictly below 1.
  EXPECT_LT(two.p_connected(), 1.0);
  EXPECT_GT(two.p_connected(), 0.5);
}

TEST(Survivability, MonteCarloConvergesIntoWilsonIntervalOfExact) {
  const Topology topo = small_fat_tree();
  const ExactSurvivability exact1 = exact_connected_probability(topo, 1);
  const ExactSurvivability exact2 = exact_connected_probability(topo, 2);

  SurvivabilityOptions options;
  options.seed = 17;
  options.samples = 20'000;
  options.max_steps = 2;
  const SurvivabilityResult result = run_survivability(topo, options);
  const std::vector<SurvivabilityCurvePoint> curve = result.curve();
  ASSERT_GE(curve.size(), 2u);
  // The MC estimate's Wilson interval must cover the exhaustive truth.
  EXPECT_TRUE(curve[0].ci.contains(exact1.p_connected()))
      << curve[0].ci.lo << ".." << curve[0].ci.hi << " vs "
      << exact1.p_connected();
  EXPECT_TRUE(curve[1].ci.contains(exact2.p_connected()))
      << curve[1].ci.lo << ".." << curve[1].ci.hi << " vs "
      << exact2.p_connected();
  // And with 20k samples it should also be close in absolute terms.
  EXPECT_NEAR(curve[1].p_connected, exact2.p_connected(), 0.01);
}

// ---- Campaign mechanics -------------------------------------------------

TEST(Survivability, RackCutsDisconnectAtStepOne) {
  // A rack domain removes every uplink of one edge switch — no FTV can
  // route around that, so every trial disconnects at the first step.
  const Topology topo = fig3_tree();
  const auto racks = fault::FailureDomainModel::racks(topo);
  SurvivabilityOptions options;
  options.samples = 200;
  const SurvivabilityResult result = run_survivability(topo, racks, options);
  EXPECT_DOUBLE_EQ(result.p_disconnect(), 1.0);
  EXPECT_DOUBLE_EQ(result.mean_domains_to_disconnect(), 1.0);
  EXPECT_DOUBLE_EQ(result.mean_links_to_disconnect(), 3.0);
  EXPECT_EQ(result.acc.rollback_rebuilds, 0u);
}

TEST(Survivability, QuarantineExcludesTheCorruptSampleAndFinishes) {
  const Topology topo = small_fat_tree();
  SurvivabilityOptions options;
  options.seed = 23;
  options.samples = 64;
  options.audit_subsample = 0;  // only the forced audit on the bad sample
  options.corrupt_sample = 17;
  const SurvivabilityResult result = run_survivability(topo, options);
  EXPECT_EQ(result.acc.quarantined, 1u);
  ASSERT_EQ(result.acc.quarantined_indices.size(), 1u);
  EXPECT_EQ(result.acc.quarantined_indices[0], 17u);
  EXPECT_EQ(result.acc.committed_samples, 63u);
  EXPECT_EQ(result.samples, 64u);
  EXPECT_GE(result.acc.audits_run, 1u);
}

TEST(Survivability, QuarantineDoesNotChangeOtherSamples) {
  const Topology topo = small_fat_tree();
  SurvivabilityOptions options;
  options.seed = 29;
  options.samples = 64;
  options.audit_subsample = 0;
  const SurvivabilityResult clean = run_survivability(topo, options);
  options.corrupt_sample = 10;
  const SurvivabilityResult poisoned = run_survivability(topo, options);
  // Per-trial RNG streams depend only on (seed, index), so removing one
  // sample shifts nothing else: committed counters differ by exactly the
  // quarantined trial's contribution.
  EXPECT_EQ(poisoned.acc.committed_samples + 1, clean.acc.committed_samples);
  EXPECT_LE(poisoned.acc.sum_steps, clean.acc.sum_steps);
}

TEST(Survivability, ByteIdenticalAcrossThreadCounts) {
  const Topology topo = fig3_tree();
  const auto racks = fault::FailureDomainModel::racks(topo);
  SurvivabilityOptions options;
  options.seed = 31;
  options.samples = 300;
  options.threads = 1;
  const SurvivabilityResult serial = run_survivability(topo, racks, options);
  options.threads = 3;
  const SurvivabilityResult threaded = run_survivability(topo, racks, options);
  EXPECT_TRUE(serial.acc == threaded.acc);
  EXPECT_EQ(serial.acc.fingerprint(), threaded.acc.fingerprint());
}

TEST(Survivability, ResumeReproducesAccumulatorsByteForByte) {
  const Topology topo = small_fat_tree();
  const auto links = fault::FailureDomainModel::independent(topo);
  SurvivabilityOptions options;
  options.seed = 37;
  options.samples = 400;
  options.checkpoint_every = 100;
  options.threads = 2;
  std::vector<SurvivabilityCheckpoint> checkpoints;
  options.on_checkpoint = [&](const SurvivabilityCheckpoint& cp) {
    checkpoints.push_back(cp);
  };
  const SurvivabilityResult full = run_survivability(topo, links, options);
  ASSERT_GE(checkpoints.size(), 4u);

  options.on_checkpoint = nullptr;
  // Kill-and-resume must hold at *every* checkpoint boundary.
  for (const SurvivabilityCheckpoint& cp : checkpoints) {
    if (cp.next_sample == options.samples) continue;
    const SurvivabilityResult resumed =
        run_survivability(topo, links, options, &cp);
    EXPECT_TRUE(full.acc == resumed.acc) << "resumed from " << cp.next_sample;
    EXPECT_EQ(full.acc.fingerprint(), resumed.acc.fingerprint());
  }
}

TEST(Survivability, CheckpointSerializationRoundTripsAndSeals) {
  const Topology topo = small_fat_tree();
  SurvivabilityOptions options;
  options.seed = 41;
  options.samples = 120;
  options.checkpoint_every = 60;
  std::vector<SurvivabilityCheckpoint> checkpoints;
  options.on_checkpoint = [&](const SurvivabilityCheckpoint& cp) {
    checkpoints.push_back(cp);
  };
  (void)run_survivability(topo, options);
  ASSERT_FALSE(checkpoints.empty());
  const SurvivabilityCheckpoint& cp = checkpoints.front();

  const std::string text = cp.serialize();
  const SurvivabilityCheckpoint parsed = SurvivabilityCheckpoint::parse(text);
  EXPECT_EQ(parsed.seed, cp.seed);
  EXPECT_EQ(parsed.next_sample, cp.next_sample);
  EXPECT_TRUE(parsed.acc == cp.acc);

  // Tampering with a counter breaks the fingerprint seal.
  std::string tampered = text;
  const std::string::size_type pos = tampered.find("committed ");
  ASSERT_NE(pos, std::string::npos);
  tampered[pos + 10] = tampered[pos + 10] == '9' ? '8' : '9';
  EXPECT_THROW((void)SurvivabilityCheckpoint::parse(tampered),
               PreconditionError);
  EXPECT_THROW((void)SurvivabilityCheckpoint::parse("not a checkpoint"),
               PreconditionError);
}

TEST(Survivability, ResumeValidatesSeedAndCampaignSize) {
  const Topology topo = small_fat_tree();
  const auto links = fault::FailureDomainModel::independent(topo);
  SurvivabilityOptions options;
  options.seed = 43;
  options.samples = 50;
  options.checkpoint_every = 25;
  std::vector<SurvivabilityCheckpoint> checkpoints;
  options.on_checkpoint = [&](const SurvivabilityCheckpoint& cp) {
    checkpoints.push_back(cp);
  };
  (void)run_survivability(topo, options);
  ASSERT_FALSE(checkpoints.empty());
  SurvivabilityCheckpoint cp = checkpoints.front();
  options.on_checkpoint = nullptr;

  SurvivabilityOptions wrong_seed = options;
  wrong_seed.seed = 44;
  EXPECT_THROW((void)run_survivability(topo, links, wrong_seed, &cp),
               PreconditionError);
  SurvivabilityOptions wrong_size = options;
  wrong_size.samples = 60;
  EXPECT_THROW((void)run_survivability(topo, links, wrong_size, &cp),
               PreconditionError);
}

TEST(Survivability, RejectsDegenerateCampaigns) {
  const Topology topo = small_fat_tree();
  SurvivabilityOptions options;
  options.samples = 0;
  EXPECT_THROW((void)run_survivability(topo, options), PreconditionError);
  options.samples = 10;
  options.max_steps = 0;
  EXPECT_THROW((void)run_survivability(topo, options), PreconditionError);
}

// ---- Availability -------------------------------------------------------

TEST(Survivability, AvailabilityIsBoundedAndMonotoneInRepairTime) {
  const Topology topo = fig3_tree();
  SurvivabilityOptions options;
  options.seed = 47;
  options.samples = 500;
  options.max_steps = 12;
  const SurvivabilityResult result = run_survivability(topo, options);
  const double fast_repair = availability_from_survivability(result, 2190.0, 4.0);
  const double slow_repair = availability_from_survivability(result, 2190.0, 400.0);
  EXPECT_GT(fast_repair, 0.0);
  EXPECT_LE(fast_repair, 1.0);
  EXPECT_LT(slow_repair, fast_repair);
  EXPECT_THROW(
      (void)availability_from_survivability(result, 0.0, 4.0),
      PreconditionError);
}

// ---- Chaos campaigns over failure domains -------------------------------

TEST(ChaosDomains, DomainCutsKeepCampaignInvariants) {
  const Topology topo = small_fat_tree();
  const auto racks = fault::FailureDomainModel::racks(topo);
  ChaosOptions options;
  options.seed = 53;
  options.num_events = 40;
  options.domains = &racks;
  options.p_domain_cut = 1.0;
  const ChaosOutcome outcome =
      run_chaos_campaign(ProtocolKind::kAnp, topo, options);
  EXPECT_GT(outcome.domain_cuts, 0u);
  EXPECT_GE(outcome.domain_links_cut, outcome.domain_cuts);
  EXPECT_LE(outcome.domain_links_cut, outcome.link_failures);
  EXPECT_EQ(outcome.ground_truth_violations, 0u);
  EXPECT_TRUE(outcome.tables_restored);
}

TEST(ChaosDomains, CampaignsAreDeterministicWithAndWithoutDomains) {
  const Topology topo = small_fat_tree();
  const auto racks = fault::FailureDomainModel::racks(topo);
  for (const bool with_domains : {false, true}) {
    ChaosOptions options;
    options.seed = 59;
    options.num_events = 30;
    if (with_domains) options.domains = &racks;
    const ChaosOutcome a = run_chaos_campaign(ProtocolKind::kAnp, topo, options);
    const ChaosOutcome b = run_chaos_campaign(ProtocolKind::kAnp, topo, options);
    EXPECT_EQ(a.link_failures, b.link_failures);
    EXPECT_EQ(a.domain_cuts, b.domain_cuts);
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_EQ(a.checks, b.checks);
  }
}

}  // namespace
}  // namespace aspen
