// Tests for the discrete-event simulation core.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/stats.h"
#include "src/util/status.h"

namespace aspen {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, EqualTimesRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.schedule(1.0, chain);
  };
  sim.schedule(1.0, chain);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, StepReturnsFalseWhenIdle) {
  Simulator sim;
  EXPECT_TRUE(sim.idle());
  EXPECT_FALSE(sim.step());
  sim.schedule(1.0, [] {});
  EXPECT_FALSE(sim.idle());
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(sim.events_processed(), 1u);
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator sim;
  double fired_at = -1;
  sim.schedule_at(7.5, [&] { fired_at = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulator, CannotScheduleIntoThePast) {
  Simulator sim;
  sim.schedule(1.0, [&] {
    EXPECT_THROW(sim.schedule_at(0.5, [] {}), PreconditionError);
    EXPECT_THROW(sim.schedule(-1.0, [] {}), PreconditionError);
  });
  sim.run();
}

TEST(Simulator, RunawayGuardTrips) {
  Simulator sim;
  std::function<void()> forever = [&] { sim.schedule(0.1, forever); };
  sim.schedule(0.1, forever);
  EXPECT_THROW(sim.run(/*max_events=*/1000), AspenError);
}

TEST(Simulator, RunBoundedReportsCapAsOutcome) {
  // Hitting the cap is a measurement ("did not quiesce"), not an error: the
  // queue keeps the unprocessed events and the run can resume.
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(static_cast<SimTime>(i + 1), [&] { ++fired; });
  }
  const RunResult first = sim.run_bounded(3);
  EXPECT_EQ(first.events, 3u);
  EXPECT_FALSE(first.completed);
  EXPECT_EQ(fired, 3);
  EXPECT_FALSE(sim.idle());

  const RunResult rest = sim.run_bounded(1000);
  EXPECT_EQ(rest.events, 7u);
  EXPECT_TRUE(rest.completed);
  EXPECT_EQ(fired, 10);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, RunBoundedExactBudgetCompletes) {
  Simulator sim;
  for (int i = 0; i < 4; ++i) sim.schedule(1.0, [] {});
  const RunResult result = sim.run_bounded(4);
  EXPECT_EQ(result.events, 4u);
  EXPECT_TRUE(result.completed);  // drained exactly at the cap
}

TEST(CpuQueue, SerializesWork) {
  CpuQueue cpu;
  // First job: arrives at 0, takes 10 → done at 10.
  EXPECT_DOUBLE_EQ(cpu.occupy(0.0, 10.0), 10.0);
  // Second job arrives at 5 while busy → starts at 10, done at 15.
  EXPECT_DOUBLE_EQ(cpu.occupy(5.0, 5.0), 15.0);
  // Third arrives after idle gap → starts on arrival.
  EXPECT_DOUBLE_EQ(cpu.occupy(20.0, 1.0), 21.0);
  EXPECT_DOUBLE_EQ(cpu.next_free(), 21.0);
  cpu.reset();
  EXPECT_DOUBLE_EQ(cpu.next_free(), 0.0);
  EXPECT_THROW(cpu.occupy(0.0, -1.0), PreconditionError);
}

TEST(DelayModel, PaperDefaults) {
  // §9.2: 1 µs propagation, 20 ms ANP, 300 ms LSA.
  const DelayModel delays;
  EXPECT_DOUBLE_EQ(delays.propagation, 0.001);
  EXPECT_DOUBLE_EQ(delays.anp_processing, 20.0);
  EXPECT_DOUBLE_EQ(delays.lsa_processing, 300.0);
}

TEST(Summary, Accumulates) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.add(1.0);
  s.add(3.0);
  s.add(2.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.total(), 6.0);
}

}  // namespace
}  // namespace aspen
