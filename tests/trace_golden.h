// Golden-trace harness: normalize a trace, diff it against a checked-in
// golden file, and regenerate goldens on request.
//
// Usage from a test:
//
//   EXPECT_TRUE(golden::matches_golden("anp_single.jsonl", trace));
//
// Goldens live under ASPEN_GOLDEN_DIR (a compile definition pointing at
// tests/golden/ in the source tree).  To refresh them after an intentional
// behavior change, run the test binary with `--regen-goldens` or with
// ASPEN_REGEN_GOLDENS=1 in the environment, then review the git diff of
// tests/golden/ like any other code change.
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

namespace aspen::golden {

/// Regeneration switch: flipped by `--regen-goldens` (see the custom main
/// in test_trace_golden.cpp) or the ASPEN_REGEN_GOLDENS env variable.
inline bool& regen_flag() {
  static bool flag = []() {
    // aspen-lint: allow(getenv) -- test harness opt-in to rewrite golden files; never read by library code
    const char* env = std::getenv("ASPEN_REGEN_GOLDENS");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
  }();
  return flag;
}

inline std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(text);
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  return lines;
}

/// Canonicalizes a trace for comparison: CRLF → LF, `#` comment/header
/// lines dropped, absolute paths and wall-clock timestamps masked.  Trace
/// records are deterministic (simulated time only), so masking is a
/// safety net for future fields, not something the current records need.
inline std::string normalize_trace(const std::string& raw) {
  static const std::regex abs_path(R"((/[A-Za-z0-9_.+\-]+){2,}/?)");
  static const std::regex wall_time(
      R"(\d{4}-\d{2}-\d{2}[T ]\d{2}:\d{2}:\d{2}(\.\d+)?)");
  std::string out;
  for (const std::string& line : split_lines(raw)) {
    if (!line.empty() && line[0] == '#') continue;
    std::string cleaned = std::regex_replace(line, wall_time, "<time>");
    cleaned = std::regex_replace(cleaned, abs_path, "<path>");
    out += cleaned;
    out += '\n';
  }
  return out;
}

/// Minimal unified diff: common prefix/suffix elision with `context` lines
/// kept on each side of the changed middle.  Good enough to read trace
/// drift; not a general LCS diff.
inline std::string unified_diff(const std::string& expected,
                                const std::string& actual,
                                std::size_t context = 3) {
  const std::vector<std::string> a = split_lines(expected);
  const std::vector<std::string> b = split_lines(actual);
  std::size_t prefix = 0;
  while (prefix < a.size() && prefix < b.size() && a[prefix] == b[prefix]) {
    ++prefix;
  }
  std::size_t suffix = 0;
  while (suffix < a.size() - prefix && suffix < b.size() - prefix &&
         a[a.size() - 1 - suffix] == b[b.size() - 1 - suffix]) {
    ++suffix;
  }
  const std::size_t from = prefix > context ? prefix - context : 0;
  std::ostringstream out;
  out << "@@ -" << (from + 1) << "," << (a.size() - suffix - from) << " +"
      << (from + 1) << "," << (b.size() - suffix - from) << " @@\n";
  for (std::size_t i = from; i < prefix; ++i) out << " " << a[i] << "\n";
  for (std::size_t i = prefix; i < a.size() - suffix; ++i) {
    out << "-" << a[i] << "\n";
  }
  for (std::size_t i = prefix; i < b.size() - suffix; ++i) {
    out << "+" << b[i] << "\n";
  }
  const std::size_t tail =
      std::min(a.size() - suffix + context, a.size());
  for (std::size_t i = a.size() - suffix; i < tail; ++i) {
    out << " " << a[i] << "\n";
  }
  return out.str();
}

inline std::string golden_path(const std::string& name) {
  return std::string(ASPEN_GOLDEN_DIR) + "/" + name;
}

/// Compares `actual_raw` (normalized) against the named golden.  In regen
/// mode the golden is (re)written instead and the assertion passes.
inline ::testing::AssertionResult matches_golden(
    const std::string& name, const std::string& actual_raw) {
  const std::string actual = normalize_trace(actual_raw);
  const std::string path = golden_path(name);
  if (regen_flag()) {
    std::ofstream out(path);
    if (!out) {
      return ::testing::AssertionFailure()
             << "cannot write golden " << path;
    }
    out << actual;
    return ::testing::AssertionSuccess() << "regenerated " << path;
  }
  std::ifstream in(path);
  if (!in) {
    return ::testing::AssertionFailure()
           << "missing golden " << path
           << " — run with --regen-goldens to create it";
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string expected = normalize_trace(buffer.str());
  if (expected == actual) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "trace drifted from golden " << name
         << " (run with --regen-goldens after reviewing):\n"
         << unified_diff(expected, actual);
}

}  // namespace aspen::golden
