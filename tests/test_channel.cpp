// Tests for the lossy channel model and the ack/retransmit transport.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/channel.h"
#include "src/sim/simulator.h"

namespace aspen {
namespace {

TEST(ChannelModel, PerfectChannelDeliversExactlyOnceOnTime) {
  Simulator sim;
  ChannelModel channel;  // defaults are perfect
  int delivered = 0;
  std::vector<SimTime> times;
  for (int i = 0; i < 100; ++i) {
    const int copies = channel.transmit(sim, 1.0, [&] {
      ++delivered;
      times.push_back(sim.now());
    });
    EXPECT_EQ(copies, 1);
  }
  sim.run();
  EXPECT_EQ(delivered, 100);
  for (const SimTime t : times) EXPECT_DOUBLE_EQ(t, 1.0);
  EXPECT_EQ(channel.stats().attempted, 100u);
  EXPECT_EQ(channel.stats().delivered, 100u);
  EXPECT_EQ(channel.stats().dropped, 0u);
  EXPECT_EQ(channel.stats().duplicated, 0u);
}

TEST(ChannelModel, LossIsSeededAndDeterministic) {
  ChannelOptions options;
  options.drop_rate = 0.3;
  options.duplicate_rate = 0.1;
  options.seed = 1234;

  const auto run_once = [&] {
    Simulator sim;
    ChannelModel channel(options);
    int delivered = 0;
    for (int i = 0; i < 500; ++i) {
      channel.transmit(sim, 0.001, [&] { ++delivered; });
    }
    sim.run();
    return std::pair<int, ChannelStats>{delivered, channel.stats()};
  };

  const auto [first, first_stats] = run_once();
  const auto [second, second_stats] = run_once();
  EXPECT_EQ(first, second);  // same seed, same fate per message
  EXPECT_EQ(first_stats.dropped, second_stats.dropped);
  EXPECT_EQ(first_stats.duplicated, second_stats.duplicated);
  // With 500 trials at 30%/10%, both fates occur.
  EXPECT_GT(first_stats.dropped, 0u);
  EXPECT_GT(first_stats.duplicated, 0u);
  // Accounting: every message is dropped, duplicated, or delivered once.
  EXPECT_EQ(first_stats.delivered,
            500u - first_stats.dropped + first_stats.duplicated);
  EXPECT_EQ(static_cast<unsigned>(first), first_stats.delivered);
}

TEST(ChannelModel, JitterStaysWithinBound) {
  ChannelOptions options;
  options.jitter_ms = 5.0;
  Simulator sim;
  ChannelModel channel(options);
  std::vector<SimTime> times;
  for (int i = 0; i < 200; ++i) {
    channel.transmit(sim, 1.0, [&] { times.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(times.size(), 200u);
  bool any_jittered = false;
  for (const SimTime t : times) {
    EXPECT_GE(t, 1.0);
    EXPECT_LT(t, 6.0);
    if (t > 1.0) any_jittered = true;
  }
  EXPECT_TRUE(any_jittered);
}

TEST(ReliableTransport, ExactlyOnceUnderHeavyLoss) {
  ChannelOptions options;
  options.drop_rate = 0.2;
  options.duplicate_rate = 0.05;
  options.jitter_ms = 1.0;
  options.seed = 99;
  Simulator sim;
  ChannelModel channel(options);
  ReliableTransport transport(sim, channel);

  std::vector<int> runs(50, 0);
  for (int i = 0; i < 50; ++i) {
    transport.send(
        0.001, [&runs, i] { ++runs[static_cast<std::size_t>(i)]; },
        [] { return true; }, [] { return true; });
  }
  sim.run();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(runs[static_cast<std::size_t>(i)], 1)
        << "payload " << i << " must run exactly once";
  }
  EXPECT_EQ(transport.stats().gave_up, 0u);
  EXPECT_GT(transport.stats().retransmits, 0u);  // 20% loss forces retries
  EXPECT_GT(transport.stats().acks_sent, 0u);
  EXPECT_EQ(transport.in_flight(), 0u);
}

TEST(ReliableTransport, DuplicatesSuppressedAndReAcked) {
  ChannelOptions options;
  options.duplicate_rate = 1.0;  // every copy arrives twice
  Simulator sim;
  ChannelModel channel(options);
  ReliableTransport transport(sim, channel);

  int runs = 0;
  transport.send(0.001, [&] { ++runs; }, [] { return true; },
                 [] { return true; });
  sim.run();
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(transport.stats().duplicates_dropped, 1u);
  EXPECT_EQ(transport.stats().acks_sent, 2u);  // every copy re-acks
  EXPECT_EQ(transport.stats().retransmits, 0u);
  EXPECT_EQ(transport.stats().gave_up, 0u);
}

TEST(ReliableTransport, GivesUpOnDeadReceiverAfterBackoff) {
  Simulator sim;
  ChannelModel channel;  // perfect medium — the *receiver* is the problem
  RetransmitPolicy policy;
  policy.rto_ms = 10.0;
  policy.backoff = 2.0;
  policy.max_retries = 3;
  ReliableTransport transport(sim, channel, policy);

  int runs = 0;
  transport.send(0.001, [&] { ++runs; }, [] { return true; },
                 [] { return false; });  // receiver is dead
  sim.run();
  EXPECT_EQ(runs, 0);
  EXPECT_EQ(transport.stats().retransmits, 3u);
  EXPECT_EQ(transport.stats().gave_up, 1u);
  EXPECT_EQ(transport.in_flight(), 0u);
  // Backoff: timers at 10, 20, 40, 80 → the conversation dies at t=150ms.
  EXPECT_DOUBLE_EQ(sim.now(), 150.0);
}

TEST(ReliableTransport, StopsTransmittingWhenLinkGoesDown) {
  Simulator sim;
  ChannelModel channel;
  RetransmitPolicy policy;
  policy.rto_ms = 10.0;
  policy.max_retries = 2;
  ReliableTransport transport(sim, channel, policy);

  bool link_up = false;  // link dead before the first copy is wired
  int runs = 0;
  transport.send(0.001, [&] { ++runs; }, [&] { return link_up; },
                 [] { return true; });
  sim.run();
  EXPECT_EQ(runs, 0);  // nothing ever crossed
  EXPECT_EQ(transport.stats().gave_up, 1u);
  EXPECT_EQ(channel.stats().attempted, 0u);  // copies never hit the wire
}

}  // namespace
}  // namespace aspen
