// Regression test for the contract-elision bug class aspen-lint's
// assert-side-effect rule guards against: this translation unit is compiled
// with ASPEN_AUDIT_LEVEL=0 (see tests/CMakeLists.txt), the Release
// configuration, so ASPEN_ASSERT and ASPEN_INVARIANT must parse their
// condition but never evaluate it.  A side effect smuggled into a contract
// would make Release behave differently from every audited build — the
// exact silent-corruption mode the static rule bans.  The library itself
// keeps its own audit level; elision is per-TU, which is what makes the
// macro discipline (and this test) meaningful.
#if defined(ASPEN_AUDIT_LEVEL) && ASPEN_AUDIT_LEVEL != 0
#error "this test must build with ASPEN_AUDIT_LEVEL=0 (audit-level off)"
#endif

#include <gtest/gtest.h>

#include "src/util/contracts.h"

namespace aspen {
namespace {

TEST(ContractsElided, AssertConditionIsNeverEvaluated) {
  int evaluations = 0;
  // aspen-lint: allow(assert-side-effect) -- this test exists to prove the mutation is skipped at audit-level off
  ASPEN_ASSERT(++evaluations > 0, "would fire only if evaluated");
  EXPECT_EQ(evaluations, 0)
      << "ASPEN_ASSERT evaluated its condition at ASPEN_AUDIT_LEVEL=0";
}

TEST(ContractsElided, InvariantConditionIsNeverEvaluated) {
  int evaluations = 0;
  // aspen-lint: allow(assert-side-effect) -- this test exists to prove the mutation is skipped at audit-level off
  ASPEN_INVARIANT(++evaluations > 0, "would fire only if evaluated");
  EXPECT_EQ(evaluations, 0)
      << "ASPEN_INVARIANT evaluated its condition at ASPEN_AUDIT_LEVEL=0";
}

TEST(ContractsElided, FalseConditionsDoNotReport) {
  // With the macros elided, even an outright violation must not reach the
  // violation handler: Release ships the seed's exact instruction stream.
  contracts::ScopedPolicy policy(contracts::ViolationPolicy::kCountAndLog);
  contracts::reset_violations();
  ASPEN_ASSERT(false, "elided");
  ASPEN_INVARIANT(false, "elided");
  EXPECT_EQ(contracts::violation_count(), 0u);
}

TEST(ContractsElided, UnreachableSurvivesElision) {
  // ASPEN_UNREACHABLE is never gated: it guards control flow, not state,
  // and stays active at every audit level.
  EXPECT_THROW(
      {
        contracts::ScopedPolicy policy(contracts::ViolationPolicy::kThrow);
        ASPEN_UNREACHABLE("must fire even at audit-level off");
      },
      AspenError);
}

TEST(ContractsElided, ConditionNamesDoNotWarnAsUnused) {
  // ASPEN_CONTRACT_NOOP parses the condition, so variables mentioned only
  // in a contract stay referenced; this TU builds under the repo's
  // -Wall -Wextra (without them, `guard` would be flagged unused).
  const bool guard = true;
  ASPEN_ASSERT(guard, "guard only appears in this contract");
  SUCCEED();
}

}  // namespace
}  // namespace aspen
