// Tests for the Listing 1 generation algorithm (§4.1) and TreeParams
// properties (§5), anchored to the paper's published examples.
#include <gtest/gtest.h>

#include "src/aspen/generator.h"
#include "src/util/status.h"

namespace aspen {
namespace {

TEST(Generator, TraditionalFatTree3Level4Port) {
  const TreeParams t = fat_tree(3, 4);
  EXPECT_EQ(t.S, 8u);                   // k^2/2
  EXPECT_EQ(t.num_hosts(), 16u);        // k^3/4
  EXPECT_EQ(t.total_switches(), 20u);   // 2.5·S
  EXPECT_EQ(t.dcc(), 1u);
  EXPECT_EQ(t.p[1], 8u);
  EXPECT_EQ(t.p[2], 4u);
  EXPECT_EQ(t.p[3], 1u);
  EXPECT_EQ(t.m[1], 1u);
  EXPECT_EQ(t.m[2], 2u);
  EXPECT_EQ(t.m[3], 4u);
  EXPECT_EQ(t.r[2], 2u);
  EXPECT_EQ(t.r[3], 4u);
  EXPECT_EQ(t.c[2], 1u);
  EXPECT_EQ(t.c[3], 1u);
}

TEST(Generator, Figure1FatTree4Level4Port) {
  // "In Figure 1, k is 4 and S is 16."
  const TreeParams t = fat_tree(4, 4);
  EXPECT_EQ(t.S, 16u);
  EXPECT_EQ(t.num_hosts(), 32u);
  EXPECT_EQ(t.total_switches(), 56u);  // 3.5·S
}

struct Fig3Row {
  std::vector<int> ftv;
  std::uint64_t dcc;
  std::uint64_t S;
  std::uint64_t switches;
  std::uint64_t hosts;
  double agg_l4, agg_l3, agg_l2, agg_overall;
};

// The complete Figure 3(a) table.
const Fig3Row kFig3Table[] = {
    {{0, 0, 0}, 1, 54, 189, 162, 3, 3, 3, 27},
    {{0, 0, 2}, 3, 18, 63, 54, 3, 3, 1, 9},
    {{0, 2, 0}, 3, 18, 63, 54, 3, 1, 3, 9},
    {{0, 2, 2}, 9, 6, 21, 18, 3, 1, 1, 3},
    {{2, 0, 0}, 3, 18, 63, 54, 1, 3, 3, 9},
    {{2, 0, 2}, 9, 6, 21, 18, 1, 3, 1, 3},
    {{2, 2, 0}, 9, 6, 21, 18, 1, 1, 3, 3},
    {{2, 2, 2}, 27, 2, 7, 6, 1, 1, 1, 1},
};

TEST(Generator, Figure3aTableReproducesExactly) {
  for (const Fig3Row& row : kFig3Table) {
    const TreeParams t = generate_tree(4, 6, FaultToleranceVector(row.ftv));
    SCOPED_TRACE(t.to_string());
    EXPECT_EQ(t.dcc(), row.dcc);
    EXPECT_EQ(t.S, row.S);
    EXPECT_EQ(t.total_switches(), row.switches);
    EXPECT_EQ(t.num_hosts(), row.hosts);
    EXPECT_DOUBLE_EQ(t.aggregation_at_level(4), row.agg_l4);
    EXPECT_DOUBLE_EQ(t.aggregation_at_level(3), row.agg_l3);
    EXPECT_DOUBLE_EQ(t.aggregation_at_level(2), row.agg_l2);
    EXPECT_DOUBLE_EQ(t.overall_aggregation(), row.agg_overall);
  }
}

TEST(Generator, FtvRoundTrips) {
  const FaultToleranceVector ftv{2, 0, 2};
  const TreeParams t = generate_tree(4, 6, ftv);
  EXPECT_EQ(t.ftv(), ftv);
  EXPECT_EQ(t.fault_tolerance_at_level(4), 2);
  EXPECT_EQ(t.fault_tolerance_at_level(3), 0);
  EXPECT_EQ(t.fault_tolerance_at_level(2), 2);
}

TEST(Generator, EquationsHoldForSampledTrees) {
  for (const auto& [n, k] : std::vector<std::pair<int, int>>{
           {3, 4}, {3, 8}, {4, 6}, {5, 4}, {3, 16}, {6, 4}}) {
    const TreeParams t = fat_tree(n, k);
    SCOPED_TRACE(t.to_string());
    EXPECT_NO_THROW(t.validate());
    // Eq. 5: S = k^{n-1} / 2^{n-2} / DCC.
    const auto K = static_cast<std::uint64_t>(k);
    std::uint64_t expect_s = K;
    for (int i = 2; i < n; ++i) expect_s = expect_s * K / 2;
    EXPECT_EQ(t.S, expect_s / t.dcc());
    // Eq. 6: hosts = k/2 · S.
    EXPECT_EQ(t.num_hosts(), K / 2 * t.S);
    // §5.3: overall aggregation = S/2.
    EXPECT_DOUBLE_EQ(t.overall_aggregation(),
                     static_cast<double>(t.S) / 2.0);
  }
}

TEST(Generator, HostReductionIsMultiplicative) {
  // §5.3: raising one level's c_i from 1 to x divides host count by x.
  const TreeParams base = fat_tree(4, 6);
  const TreeParams one = generate_tree(4, 6, FaultToleranceVector{2, 0, 0});
  EXPECT_EQ(base.num_hosts(), 3 * one.num_hosts());
  const TreeParams other = generate_tree(4, 6, FaultToleranceVector{0, 2, 0});
  EXPECT_EQ(one.num_hosts(), other.num_hosts());  // level placement irrelevant
}

TEST(Generator, LinkCountMatchesPaperFootnote) {
  // §1 footnote 1: "Even a relatively small 64-port, 3-level fat tree has
  // 196,608 links."
  EXPECT_EQ(fat_tree(3, 64).total_links(), 196'608u);
}

TEST(Generator, InterSwitchLinks) {
  const TreeParams t = fat_tree(3, 4);
  EXPECT_EQ(t.total_links(), 48u);        // 3·S·k/2
  EXPECT_EQ(t.inter_switch_links(), 32u); // 2·S·k/2
}

TEST(Generator, InvalidConnectionCountThrows) {
  // c_2 = 4 does not divide k/2 = 3 for k = 6.
  EXPECT_THROW(generate_tree(3, 6, FaultToleranceVector{0, 3}),
               InvalidTreeError);
  EXPECT_FALSE(is_valid_tree(3, 6, FaultToleranceVector{0, 3}));
}

TEST(Generator, NonIntegerPodSizeThrows) {
  // n=4, k=6, FTV <1,…>: c_4 = 2 divides 6, but S becomes 27 (odd) so
  // m_4 = S/2 is not an integer.
  EXPECT_THROW(generate_tree(4, 6, FaultToleranceVector{1, 0, 0}),
               InvalidTreeError);
  EXPECT_EQ(try_generate_tree(4, 6, FaultToleranceVector{1, 0, 0}),
            std::nullopt);
}

TEST(Generator, TryGenerateReturnsValueOnSuccess) {
  const auto t = try_generate_tree(3, 4, FaultToleranceVector{1, 0});
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->num_hosts(), 8u);  // half of the 16-host fat tree
}

TEST(Generator, PreconditionsThrow) {
  EXPECT_THROW(fat_tree(1, 4), PreconditionError);
  EXPECT_THROW(fat_tree(3, 5), PreconditionError);   // odd k
  EXPECT_THROW(fat_tree(3, 0), PreconditionError);
  EXPECT_THROW(generate_tree(3, 4, FaultToleranceVector{0, 0, 0}),
               PreconditionError);  // FTV length mismatch
}

TEST(Generator, MaximallyFaultTolerantTree) {
  // Figure 3(e): FTV <2,2,2> for n=4, k=6: S=2, 7 switches, 6 hosts.
  const TreeParams t = generate_tree(4, 6, FaultToleranceVector{2, 2, 2});
  EXPECT_EQ(t.S, 2u);
  EXPECT_EQ(t.total_switches(), 7u);
  EXPECT_EQ(t.num_hosts(), 6u);
  EXPECT_TRUE(t.ftv().is_fully_fault_tolerant());
}

TEST(Generator, TwoLevelTrees) {
  // Degenerate but valid: n=2.  L2 switches connect to every L1 pod.
  const TreeParams t = fat_tree(2, 4);
  EXPECT_EQ(t.S, 4u);
  EXPECT_EQ(t.num_hosts(), 8u);
  EXPECT_NO_THROW(t.validate());
}

TEST(Generator, ValidateCatchesCorruptedParams) {
  TreeParams t = fat_tree(3, 4);
  t.c[2] = 2;  // breaks Eq. 2 (r·c != k/2)
  EXPECT_THROW(t.validate(), InvalidTreeError);

  TreeParams t2 = fat_tree(3, 4);
  t2.p[2] = 3;  // breaks Eq. 1 and 3
  EXPECT_THROW(t2.validate(), InvalidTreeError);

  TreeParams t3 = fat_tree(3, 4);
  t3.S = 7;  // odd S
  EXPECT_THROW(t3.validate(), InvalidTreeError);
}

TEST(Generator, ToStringMentionsShape) {
  const TreeParams t = generate_tree(4, 6, FaultToleranceVector{0, 2, 0});
  EXPECT_EQ(t.to_string(), "Aspen(n=4,k=6,FTV=<0,2,0>)");
}

}  // namespace
}  // namespace aspen
