// Tests for fixed-host-count Aspen tree designs (§4.2, §8.2, §9.2).
#include <gtest/gtest.h>

#include "src/aspen/fixed_hosts.h"
#include "src/aspen/generator.h"
#include "src/util/status.h"

namespace aspen {
namespace {

TEST(FixedHosts, PreservesHostCount) {
  for (const auto& [n, k] : std::vector<std::pair<int, int>>{
           {3, 4}, {3, 6}, {3, 8}, {4, 4}, {4, 16}, {5, 4}}) {
    const TreeParams base = fat_tree(n, k);
    for (int x = 1; x <= 2; ++x) {
      const TreeParams aspen = design_fixed_host_tree(n, k, x);
      SCOPED_TRACE(aspen.to_string());
      EXPECT_EQ(aspen.num_hosts(), base.num_hosts());
      EXPECT_EQ(aspen.n, n + x);
      EXPECT_EQ(aspen.S, base.S);  // same hosts → same S
    }
  }
}

TEST(FixedHosts, PaperConstructionForOneLevel) {
  // §9.2: "we increase the number of switches at Ln from S/2 to S and add a
  // new level, Ln+1, with S/2 switches.  In other words, we add S new
  // switches to the tree."
  for (const auto& [n, k] :
       std::vector<std::pair<int, int>>{{3, 4}, {3, 8}, {4, 6}}) {
    const TreeParams base = fat_tree(n, k);
    EXPECT_EQ(switches_added(n, k, 1), base.S) << "n=" << n << " k=" << k;
  }
}

TEST(FixedHosts, SwitchIncreasePercentagesMatchPaper) {
  // §9.2: adding one level "corresponds to 40%, 29% and 22% increases in
  // total switch count, for 3, 4 and 5-level fat trees."
  for (const auto& [n, pct] :
       std::vector<std::pair<int, double>>{{3, 40.0}, {4, 28.6}, {5, 22.2}}) {
    const TreeParams base = fat_tree(n, 4);
    const double increase = 100.0 *
                            static_cast<double>(switches_added(n, 4, 1)) /
                            static_cast<double>(base.total_switches());
    EXPECT_NEAR(increase, pct, 0.5) << "n=" << n;
  }
}

TEST(FixedHosts, SwitchToHostRatioIncrease) {
  // §9.2: "a 2/k increase in the switch-to-host ratio."
  const int n = 3;
  const int k = 8;
  const TreeParams base = fat_tree(n, k);
  const TreeParams aspen = design_fixed_host_tree(n, k, 1);
  const double base_ratio = static_cast<double>(base.total_switches()) /
                            static_cast<double>(base.num_hosts());
  const double aspen_ratio = static_cast<double>(aspen.total_switches()) /
                             static_cast<double>(aspen.num_hosts());
  EXPECT_NEAR(aspen_ratio - base_ratio, 2.0 / k, 1e-12);
}

TEST(FixedHosts, TopPlacementFtv) {
  // x=1 on a 3-level tree: FTV <k/2−1, 0, 0>.
  EXPECT_EQ(fixed_host_ftv(3, 8, 1), (FaultToleranceVector{3, 0, 0}));
  // x=2: two fault-tolerant levels on top.
  EXPECT_EQ(fixed_host_ftv(3, 8, 2), (FaultToleranceVector{3, 3, 0, 0}));
}

TEST(FixedHosts, BottomPlacementFtv) {
  EXPECT_EQ(fixed_host_ftv(3, 8, 1, RedundancyPlacement::kBottom),
            (FaultToleranceVector{0, 0, 3}));
  EXPECT_EQ(fixed_host_ftv(3, 8, 2, RedundancyPlacement::kBottom),
            (FaultToleranceVector{0, 0, 3, 3}));
}

TEST(FixedHosts, SpreadPlacementFtv) {
  // 4 entries, 2 redundant levels: segments of 2, each led by redundancy.
  EXPECT_EQ(fixed_host_ftv(3, 8, 2, RedundancyPlacement::kSpread),
            (FaultToleranceVector{3, 0, 3, 0}));
  // One redundant level spreads to the top.
  EXPECT_EQ(fixed_host_ftv(3, 8, 1, RedundancyPlacement::kSpread),
            (FaultToleranceVector{3, 0, 0}));
}

TEST(FixedHosts, AllPlacementsPreserveHosts) {
  const TreeParams base = fat_tree(4, 8);
  for (const auto placement :
       {RedundancyPlacement::kTop, RedundancyPlacement::kBottom,
        RedundancyPlacement::kSpread}) {
    const TreeParams aspen = design_fixed_host_tree(4, 8, 2, placement);
    EXPECT_EQ(aspen.num_hosts(), base.num_hosts());
  }
}

TEST(FixedHosts, Vl2StyleTreeIsTopLevelRedundant) {
  // §8.1/§2: the VL2 topology is an Aspen tree with FTV <1,0,0,…> — for
  // k = 4 the fixed-host design with one added level is exactly that.
  const TreeParams aspen = design_fixed_host_tree(3, 4, 1);
  EXPECT_EQ(aspen.ftv(), (FaultToleranceVector{1, 0, 0}));
}

TEST(FixedHosts, PreconditionsThrow) {
  EXPECT_THROW(design_fixed_host_tree(1, 4, 1), PreconditionError);
  EXPECT_THROW(design_fixed_host_tree(3, 2, 1), PreconditionError);  // k<4
  EXPECT_THROW(design_fixed_host_tree(3, 5, 1), PreconditionError);  // odd
  EXPECT_THROW(design_fixed_host_tree(3, 4, 0), PreconditionError);
}

TEST(FixedHosts, DeeperTreesKeepAddingSwitches) {
  const std::uint64_t one = switches_added(3, 8, 1);
  const std::uint64_t two = switches_added(3, 8, 2);
  EXPECT_GT(two, one);
}

}  // namespace
}  // namespace aspen
