// Tests for host-granularity routing tables: host-link ("1st hop")
// failures become routing-visible, which is how the analytic ANP
// reacting-switch model's host-link term (notifications climbing to the
// roots) gets validated against the discrete-event simulation.
#include <gtest/gtest.h>

#include "src/analysis/react.h"
#include "src/aspen/fixed_hosts.h"
#include "src/aspen/generator.h"
#include "src/proto/experiment.h"
#include "src/routing/packet_walk.h"
#include "src/routing/reachability.h"
#include "src/routing/updown.h"
#include "src/util/status.h"

namespace aspen {
namespace {

Topology fat34() { return Topology::build(fat_tree(3, 4)); }

TEST(HostGranularity, TableSizesAndCosts) {
  const Topology topo = fat34();
  const RoutingState routes =
      compute_updown_routes(topo, LinkStateOverlay(topo),
                            DestGranularity::kHost);
  EXPECT_EQ(routes.granularity, DestGranularity::kHost);
  EXPECT_EQ(routes.num_dests(), topo.num_hosts());
  EXPECT_EQ(routes.dest_index(HostId{5}), 5u);

  // The destination's edge switch holds the host link at cost 1.
  const SwitchId edge = topo.edge_switch_of(HostId{0});
  const auto hops = routes.table(edge).next_hops(0);
  EXPECT_EQ(routes.table(edge).entry(0).cost, 1);
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_EQ(hops[0].link, topo.host_uplink(HostId{0}).link);

  // Everyone else pays one hop more than the edge-granularity cost.
  const RoutingState edge_routes = compute_updown_routes(topo);
  const SwitchId core = topo.switch_at(3, 0);
  EXPECT_EQ(routes.table(core).entry(0).cost,
            edge_routes.table(core).entry(0).cost + 1);
}

TEST(HostGranularity, DeliversAllPairs) {
  const Topology topo = fat34();
  const LinkStateOverlay intact(topo);
  const RoutingState routes =
      compute_updown_routes(topo, intact, DestGranularity::kHost);
  const TableRouter router(routes);
  const ReachabilityStats stats = measure_all_pairs(topo, router, intact);
  EXPECT_EQ(stats.undelivered(), 0u);
  EXPECT_EQ(stats.looped, 0u);
}

TEST(HostGranularity, EdgeIndexMappingForEdgeTables) {
  const Topology topo = fat34();
  const RoutingState routes = compute_updown_routes(topo);
  EXPECT_EQ(routes.granularity, DestGranularity::kEdge);
  EXPECT_EQ(routes.hosts_per_edge, 2u);
  EXPECT_EQ(routes.dest_index(HostId{0}), 0u);
  EXPECT_EQ(routes.dest_index(HostId{5}), 2u);
}

TEST(HostGranularity, HostLinkFailureIsRoutingVisible) {
  const Topology topo = fat34();
  LinkStateOverlay degraded(topo);
  degraded.fail(topo.host_uplink(HostId{0}).link);
  const RoutingState routes =
      compute_updown_routes(topo, degraded, DestGranularity::kHost);
  // Nobody can reach host 0 — including its own edge switch…
  for (std::uint32_t v = 0; v < topo.num_switches(); ++v) {
    EXPECT_FALSE(routes.tables[v].entry(0).reachable()) << v;
  }
  // …while its edge-mates stay reachable everywhere.
  const SwitchId core = topo.switch_at(3, 0);
  EXPECT_TRUE(routes.table(core).entry(1).reachable());
}

TEST(HostGranularity, AnpHostLinkNotificationsClimbToRoots) {
  const Topology topo = fat34();
  AnpSimulation anp(topo, DelayModel{}, AnpOptions{},
                    DestGranularity::kHost);
  const FailureReport report =
      anp.simulate_link_failure(topo.host_uplink(HostId{0}).link);
  // Edge switch + its 2 parents + all 4 cores react (nobody has an
  // alternate path to a single-homed host).
  EXPECT_EQ(report.switches_reacted, 7u);
  EXPECT_EQ(report.max_update_hops, 2);  // edge → agg → core
  (void)anp.simulate_link_recovery(topo.host_uplink(HostId{0}).link);
}

TEST(HostGranularity, AnalyticReactModelMatchesDesWithHostLinks) {
  // The Figure 10(c) react model, host links included, against the DES.
  for (const auto& [k, n_fat] :
       std::vector<std::pair<int, int>>{{4, 3}, {6, 3}}) {
    const TreeParams params = design_fixed_host_tree(n_fat, k, 1);
    const Topology topo = Topology::build(params);
    AnpSimulation anp(topo, DelayModel{}, AnpOptions{},
                      DestGranularity::kHost);
    // Host-link failures: analytic = 1 + Σ min((k/2)^j, m_j).
    const double analytic =
        static_cast<double>(anp_reacting_switches(params, 1));
    double measured = 0;
    const auto links = topo.links_at_level(1);
    for (const LinkId link : links) {
      measured += static_cast<double>(
          anp.simulate_link_failure(link).switches_reacted);
      (void)anp.simulate_link_recovery(link);
    }
    measured /= static_cast<double>(links.size());
    EXPECT_NEAR(measured, analytic, analytic * 0.25 + 0.5)
        << "k=" << k << " n=" << n_fat;
  }
}

TEST(HostGranularity, LspHostLinkFailureChangesEveryTable) {
  // At host granularity a host-link failure invalidates that host's entry
  // at *every* switch — the global-reconvergence story of §2.
  const Topology topo = fat34();
  LspSimulation lsp(topo, DelayModel{}, DestGranularity::kHost);
  const FailureReport report =
      lsp.simulate_link_failure(topo.host_uplink(HostId{3}).link);
  EXPECT_EQ(report.switches_reacted, topo.num_switches());
  EXPECT_EQ(report.switches_informed, topo.num_switches());
  (void)lsp.simulate_link_recovery(topo.host_uplink(HostId{3}).link);
}

TEST(HostGranularity, RecoveryRestoresTables) {
  const Topology topo =
      Topology::build(generate_tree(4, 4, FaultToleranceVector{1, 0, 0}));
  for (const auto kind : {ProtocolKind::kLsp, ProtocolKind::kAnp}) {
    auto proto = make_protocol(kind, topo, DelayModel{}, AnpOptions{},
                               DestGranularity::kHost);
    const RoutingState initial = proto->tables();
    for (Level level = 1; level <= topo.levels(); ++level) {
      const auto links = topo.links_at_level(level);
      (void)proto->simulate_link_failure(links[0]);
      (void)proto->simulate_link_recovery(links[0]);
    }
    EXPECT_EQ(switches_with_changed_tables(initial, proto->tables()), 0u)
        << to_cstring(kind);
  }
}

TEST(HostGranularity, SweepOverHostLinks) {
  const Topology topo = fat34();
  SweepOptions options;
  options.granularity = DestGranularity::kHost;
  options.levels = {1};
  const SweepResult anp =
      sweep_link_failures(ProtocolKind::kAnp, topo, options);
  EXPECT_EQ(anp.failures, topo.num_hosts());
  EXPECT_GT(anp.reacted.mean(), 2.0);  // waves climb past the endpoints
  const SweepResult lsp =
      sweep_link_failures(ProtocolKind::kLsp, topo, options);
  EXPECT_DOUBLE_EQ(lsp.reacted.mean(),
                   static_cast<double>(topo.num_switches()));
}

TEST(HostGranularity, ExtendedAnpStillMatchesGroundTruth) {
  const Topology topo =
      Topology::build(generate_tree(4, 4, FaultToleranceVector{0, 1, 0}));
  AnpOptions extended;
  extended.notify_children = true;
  AnpSimulation anp(topo, DelayModel{}, extended, DestGranularity::kHost);
  for (Level level = 1; level <= topo.levels(); ++level) {
    const auto links = topo.links_at_level(level);
    const LinkId link = links[links.size() / 2];
    (void)anp.simulate_link_failure(link);
    const ReachabilityStats anp_stats =
        measure_all_pairs(topo, TableRouter(anp.tables()), anp.overlay());
    const RoutingState truth = compute_updown_routes(
        topo, anp.overlay(), DestGranularity::kHost);
    const ReachabilityStats truth_stats =
        measure_all_pairs(topo, TableRouter(truth), anp.overlay());
    EXPECT_EQ(anp_stats.undelivered(), truth_stats.undelivered())
        << "level " << level;
    (void)anp.simulate_link_recovery(link);
  }
}

}  // namespace
}  // namespace aspen
