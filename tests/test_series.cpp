// Tests for the Figure 10 fat/Aspen pair series.
#include <gtest/gtest.h>

#include "src/analysis/series.h"
#include "src/aspen/generator.h"

namespace aspen {
namespace {

TEST(Series, PairBasics) {
  const PairPoint p = analyze_pair(4, 3);
  EXPECT_EQ(p.hosts, 16u);
  EXPECT_EQ(p.fat.n, 3);
  EXPECT_EQ(p.aspen.n, 4);
  EXPECT_EQ(p.aspen.ftv(), (FaultToleranceVector{1, 0, 0}));
  EXPECT_EQ(p.fat_switches, 20u);
  EXPECT_EQ(p.aspen_switches, 28u);
  EXPECT_EQ(p.label(), "16:k=4,n=3,4");
}

TEST(Series, SmallSeriesMatchesFigure10ab) {
  const auto series = figure10_small_series();
  ASSERT_EQ(series.size(), 4u);
  // Host counts on the x-axis of Fig. 10(a): 16, 54, 128, 32.
  EXPECT_EQ(series[0].hosts, 16u);
  EXPECT_EQ(series[1].hosts, 54u);
  EXPECT_EQ(series[2].hosts, 128u);
  EXPECT_EQ(series[3].hosts, 32u);
}

TEST(Series, LargeSeriesMatchesFigure10cd) {
  const auto series = figure10_large_series();
  ASSERT_EQ(series.size(), 16u);
  // Spot-check the published x labels.
  EXPECT_EQ(series[0].label(), "16:k=4,n=3,4");
  EXPECT_EQ(series[6].label(), "524288:k=128,n=3,4");
  EXPECT_EQ(series[11].label(), "131072:k=32,n=4,5");
  EXPECT_EQ(series[15].label(), "65536:k=16,n=5,6");
}

TEST(Series, SwitchHostRatiosShrinkWithK) {
  const auto series = figure10_large_series();
  // Within the n=3 group, the switch:host ratio falls as k grows.
  for (int i = 1; i < 7; ++i) {
    EXPECT_LT(series[static_cast<std::size_t>(i)].fat_switch_host_ratio,
              series[static_cast<std::size_t>(i - 1)].fat_switch_host_ratio);
  }
  // Aspen needs modestly more switches than fat for every pair.
  for (const PairPoint& p : series) {
    EXPECT_GT(p.aspen_switch_host_ratio, p.fat_switch_host_ratio);
    EXPECT_LT(p.aspen_switch_host_ratio, 2.0 * p.fat_switch_host_ratio);
  }
}

TEST(Series, LspInvolvesAllSwitchesAnpFew) {
  // Fig. 10(c): "LSP re-convergence consistently involves all switches in
  // the tree, whereas only 10-20% of Aspen switches react to each failure."
  for (const PairPoint& p : figure10_large_series()) {
    EXPECT_DOUBLE_EQ(p.lsp_react, static_cast<double>(p.fat_switches));
    EXPECT_LT(p.anp_react, 0.25 * static_cast<double>(p.aspen_switches))
        << p.label();
  }
}

TEST(Series, ConvergenceGapIsOrdersOfMagnitude) {
  // Fig. 10(d): "ANP converges orders of magnitude more quickly than LSP."
  for (const PairPoint& p : figure10_large_series()) {
    EXPECT_GT(p.lsp_avg_ms, 20.0 * p.anp_avg_ms) << p.label();
  }
}

TEST(Series, ConvergenceGapGrowsWithDepth) {
  // Fig. 10(b): "this difference grows as n increases."
  const PairPoint n3 = analyze_pair(4, 3);
  const PairPoint n4 = analyze_pair(4, 4);
  const PairPoint n5 = analyze_pair(4, 5);
  EXPECT_GT(n4.lsp_avg_ms - n4.anp_avg_ms, n3.lsp_avg_ms - n3.anp_avg_ms);
  EXPECT_GT(n5.lsp_avg_ms - n5.anp_avg_ms, n4.lsp_avg_ms - n4.anp_avg_ms);
}

TEST(Series, HopLabelsMatchPaper) {
  // Fig. 10(d) labels: LSP 3 / 4.5 / 6 hops, ANP 1.5 / 2 / 2.5 hops.
  const PairPoint n3 = analyze_pair(16, 3);
  EXPECT_DOUBLE_EQ(n3.lsp_avg_hops, 3.0);
  EXPECT_DOUBLE_EQ(n3.anp_avg_hops, 1.5);
  const PairPoint n4 = analyze_pair(16, 4);
  EXPECT_DOUBLE_EQ(n4.lsp_avg_hops, 4.5);
  EXPECT_DOUBLE_EQ(n4.anp_avg_hops, 2.0);
  const PairPoint n5 = analyze_pair(16, 5);
  EXPECT_DOUBLE_EQ(n5.lsp_avg_hops, 6.0);
  EXPECT_DOUBLE_EQ(n5.anp_avg_hops, 2.5);
}

TEST(Series, CustomDelayModelPropagates) {
  DelayModel delays;
  delays.lsa_processing = 100.0;
  delays.anp_processing = 10.0;
  const PairPoint p = analyze_pair(4, 3, delays);
  EXPECT_NEAR(p.lsp_avg_ms, 3.0 * 100.001, 1e-6);
  EXPECT_NEAR(p.anp_avg_ms, 1.5 * 10.001, 1e-6);
}

TEST(Series, HugePairsStayAnalytic) {
  // k=128, n=3 → 524,288 hosts: must complete instantly without building
  // any topology.
  const PairPoint p = analyze_pair(128, 3);
  EXPECT_EQ(p.hosts, 524'288u);
  EXPECT_EQ(p.fat_switches, 20'480u);
  EXPECT_EQ(p.aspen_switches, 28'672u);
}

}  // namespace
}  // namespace aspen
