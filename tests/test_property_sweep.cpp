// Parameterized property sweeps over every enumerated Aspen tree for a grid
// of (n, k) shapes: construction invariants, routing correctness, the DCC
// path property, and protocol end-to-end behaviour under failures.
#include <gtest/gtest.h>

#include <limits>

#include "src/aspen/enumerate.h"
#include "src/aspen/generator.h"
#include "src/analysis/convergence.h"
#include "src/proto/experiment.h"
#include "src/routing/paths.h"
#include "src/routing/reachability.h"
#include "src/routing/updown.h"
#include "src/topo/validate.h"
#include "src/util/contracts.h"
#include "src/util/math.h"
#include "src/util/parallel.h"

namespace aspen {
namespace {

struct Shape {
  int n;
  int k;
  friend std::ostream& operator<<(std::ostream& os, const Shape& s) {
    return os << "n" << s.n << "k" << s.k;
  }
};

// Keeps the sweep fast: trees beyond these sizes are covered analytically.
constexpr std::uint64_t kMaxHostsToBuild = 200;

std::vector<TreeParams> buildable_trees(const Shape& shape) {
  std::vector<TreeParams> result;
  for (const TreeParams& t : enumerate_trees(shape.n, shape.k)) {
    if (t.num_hosts() <= kMaxHostsToBuild) result.push_back(t);
  }
  return result;
}

class TreeSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(TreeSweep, ClosedFormsMatchDefinition) {
  const auto [n, k] = GetParam();
  for (const TreeParams& t : enumerate_trees(n, k)) {
    SCOPED_TRACE(t.to_string());
    EXPECT_NO_THROW(t.validate());
    // Eq. 5: S = k^{n−1}/2^{n−2}/DCC.
    const std::uint64_t numerator =
        ipow(static_cast<std::uint64_t>(k), static_cast<unsigned>(n - 1));
    EXPECT_EQ(t.S, numerator / ipow(2, static_cast<unsigned>(n - 2)) /
                       t.dcc());
    // Eq. 6 and §5.2/§5.3 identities.
    EXPECT_EQ(t.num_hosts(), t.S * static_cast<std::uint64_t>(k) / 2);
    EXPECT_EQ(t.total_switches(),
              static_cast<std::uint64_t>(n - 1) * t.S + t.S / 2);
    EXPECT_DOUBLE_EQ(t.overall_aggregation(),
                     static_cast<double>(t.S) / 2.0);
    EXPECT_EQ(t.ftv().dcc(), t.dcc());
  }
}

TEST_P(TreeSweep, BuiltTopologiesPassValidation) {
  for (const TreeParams& t : buildable_trees(GetParam())) {
    const Topology topo = Topology::build(t);
    SCOPED_TRACE(topo.describe());
    const ValidationReport report = validate_topology(topo);
    EXPECT_TRUE(report.ports_ok);
    EXPECT_TRUE(report.uniform_fault_tolerance);
    EXPECT_TRUE(report.top_level_coverage);
    EXPECT_TRUE(report.anp_striping_ok)
        << (report.problems.empty() ? "" : report.problems.front());
    EXPECT_EQ(topo.num_links(), t.total_links());
  }
}

TEST_P(TreeSweep, IntactRoutingDeliversEveryFlow) {
  for (const TreeParams& t : buildable_trees(GetParam())) {
    const Topology topo = Topology::build(t);
    SCOPED_TRACE(topo.describe());
    const RoutingState routes = compute_updown_routes(topo);
    const TableRouter router(routes);
    const LinkStateOverlay intact(topo);
    const ReachabilityStats stats = measure_all_pairs(topo, router, intact);
    EXPECT_EQ(stats.undelivered(), 0u);
    EXPECT_EQ(stats.looped, 0u);
  }
}

TEST_P(TreeSweep, DccCountsTopDownPaths) {
  for (const TreeParams& t : buildable_trees(GetParam())) {
    const Topology topo = Topology::build(t);
    SCOPED_TRACE(topo.describe());
    const LinkStateOverlay intact(topo);
    const SwitchId top = topo.switch_at(t.n, 0);
    for (std::uint64_t e = 0; e < t.S; e += (t.S > 8 ? 3 : 1)) {
      EXPECT_EQ(count_down_paths(topo, intact, top, topo.switch_at(1, e)),
                t.dcc());
    }
  }
}

TEST_P(TreeSweep, ExtendedAnpMatchesGroundTruthReachability) {
  // For every single-link failure (one link sampled per level), extended
  // ANP's patched tables deliver exactly the flows that remain deliverable
  // under full global recomputation.
  for (const TreeParams& t : buildable_trees(GetParam())) {
    const Topology topo = Topology::build(t);
    SCOPED_TRACE(topo.describe());
    AnpOptions extended;
    extended.notify_children = true;
    AnpSimulation anp(topo, DelayModel{}, extended);
    for (Level level = 2; level <= t.n; ++level) {
      const auto links = topo.links_at_level(level);
      const LinkId link = links[links.size() / 2];
      (void)anp.simulate_link_failure(link);

      const TableRouter anp_router(anp.tables());
      const ReachabilityStats anp_stats =
          measure_all_pairs(topo, anp_router, anp.overlay());

      const RoutingState truth = compute_updown_routes(topo, anp.overlay());
      const TableRouter truth_router(truth);
      const ReachabilityStats truth_stats =
          measure_all_pairs(topo, truth_router, anp.overlay());

      EXPECT_EQ(anp_stats.undelivered(), truth_stats.undelivered())
          << "level " << level;
      (void)anp.simulate_link_recovery(link);
    }
  }
}

TEST_P(TreeSweep, ExtendedAnpMatchesGroundTruthUnderRandomStriping) {
  // The withdrawal protocol's equivalence to global recomputation must not
  // depend on the §7-friendly standard striping: random (possibly
  // §7-violating) wirings still converge to the same delivered-flow set.
  StripingConfig cfg;
  cfg.kind = StripingKind::kRandom;
  cfg.seed = 1234;
  for (const TreeParams& t : buildable_trees(GetParam())) {
    const Topology topo = Topology::build(t, cfg);
    SCOPED_TRACE(topo.describe());
    AnpOptions extended;
    extended.notify_children = true;
    AnpSimulation anp(topo, DelayModel{}, extended);
    for (Level level = 2; level <= t.n; ++level) {
      const auto links = topo.links_at_level(level);
      const LinkId link = links[links.size() / 4];
      (void)anp.simulate_link_failure(link);
      const ReachabilityStats anp_stats = measure_all_pairs(
          topo, TableRouter(anp.tables()), anp.overlay());
      const RoutingState truth = compute_updown_routes(topo, anp.overlay());
      const ReachabilityStats truth_stats =
          measure_all_pairs(topo, TableRouter(truth), anp.overlay());
      EXPECT_EQ(anp_stats.undelivered(), truth_stats.undelivered())
          << "level " << level;
      (void)anp.simulate_link_recovery(link);
    }
  }
}

TEST_P(TreeSweep, FaithfulAnpLocalizesReactions) {
  // Faithful ANP reacts with at most the §9.1 propagation distance: the
  // farthest table-changing update travels to the absorbing level, or to
  // the roots when nothing absorbs.
  for (const TreeParams& t : buildable_trees(GetParam())) {
    const Topology topo = Topology::build(t);
    SCOPED_TRACE(topo.describe());
    AnpSimulation anp(topo);
    const FaultToleranceVector ftv = t.ftv();
    for (Level level = 2; level <= t.n; ++level) {
      const auto links = topo.links_at_level(level);
      const LinkId link = links[links.size() / 3];
      const FailureReport report = anp.simulate_link_failure(link);
      const Level f = ftv.nearest_fault_tolerant_level_at_or_above(level);
      const int bound = ((f != 0) ? f : t.n) - level;
      EXPECT_LE(report.max_update_hops, bound) << "level " << level;
      (void)anp.simulate_link_recovery(link);
    }
  }
}

TEST_P(TreeSweep, FaithfulAnpHopsMatchAnalyticDistanceExactly) {
  // For a covered failure at a minimally connected level, the notification
  // wave is absorbed exactly at the nearest fault-tolerant level: the DES
  // hop metric equals the §9.1 distance, not merely bounds it.
  for (const TreeParams& t : buildable_trees(GetParam())) {
    const Topology topo = Topology::build(t);
    SCOPED_TRACE(topo.describe());
    AnpSimulation anp(topo);
    const FaultToleranceVector ftv = t.ftv();
    for (Level level = 2; level <= t.n; ++level) {
      const Level f = ftv.nearest_fault_tolerant_level_at_or_above(level);
      if (f == 0) continue;  // uncovered: the wave dies at the roots
      const auto links = topo.links_at_level(level);
      const LinkId link = links[0];
      const FailureReport report = anp.simulate_link_failure(link);
      EXPECT_EQ(report.max_update_hops, f - level) << "level " << level;
      (void)anp.simulate_link_recovery(link);
    }
  }
}

TEST_P(TreeSweep, ProtocolsRecoverTheirTables) {
  for (const TreeParams& t : buildable_trees(GetParam())) {
    const Topology topo = Topology::build(t);
    SCOPED_TRACE(topo.describe());
    for (const auto kind : {ProtocolKind::kLsp, ProtocolKind::kAnp}) {
      SweepOptions options;
      options.max_links_per_level = 1;
      options.verify_recovery_restores_tables = true;
      const SweepResult sweep = sweep_link_failures(kind, topo, options);
      EXPECT_EQ(sweep.recovery_mismatches, 0u) << to_cstring(kind);
    }
  }
}

// Paranoid audits × threads>1: the sweep grid above runs every protocol
// property at the default audit level and thread count, so the combined
// cell — layer auditors active while the routing pool fans out — was a
// latent gap.  One failure/recovery cycle per tree keeps it cheap.
TEST_P(TreeSweep, ProtocolsRecoverUnderParanoidThreadedMatrix) {
  const contracts::ScopedPolicy paranoid(contracts::policy(),
                                         contracts::AuditLevel::kParanoid);
  parallel::set_num_threads(2);
  for (const TreeParams& t : buildable_trees(GetParam())) {
    const Topology topo = Topology::build(t);
    SCOPED_TRACE(topo.describe());
    for (const auto kind : {ProtocolKind::kLsp, ProtocolKind::kAnp}) {
      SweepOptions options;
      options.max_links_per_level = 1;
      options.levels = {2};
      options.verify_recovery_restores_tables = true;
      const SweepResult sweep = sweep_link_failures(kind, topo, options);
      EXPECT_EQ(sweep.recovery_mismatches, 0u) << to_cstring(kind);
    }
  }
  parallel::set_num_threads(0);
}

TEST_P(TreeSweep, LspFloodingInformsEveryone) {
  for (const TreeParams& t : buildable_trees(GetParam())) {
    const Topology topo = Topology::build(t);
    LspSimulation lsp(topo);
    const auto links = topo.links_at_level(2);
    const FailureReport report = lsp.simulate_link_failure(links[0]);
    EXPECT_EQ(report.switches_informed, topo.num_switches())
        << topo.describe();
    (void)lsp.simulate_link_recovery(links[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TreeSweep,
                         ::testing::Values(Shape{2, 4}, Shape{2, 6},
                                           Shape{3, 4}, Shape{3, 6},
                                           Shape{3, 8}, Shape{3, 10},
                                           Shape{4, 4}, Shape{4, 6},
                                           Shape{4, 8}, Shape{5, 4}),
                         [](const ::testing::TestParamInfo<Shape>& param) {
                           return "n" + std::to_string(param.param.n) +
                                  "k" + std::to_string(param.param.k);
                         });

}  // namespace
}  // namespace aspen
