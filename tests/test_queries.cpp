// Tests for topology ancestry queries (the relations behind §6/§7).
#include <gtest/gtest.h>

#include "src/aspen/generator.h"
#include "src/topo/queries.h"
#include "src/util/status.h"

namespace aspen {
namespace {

TEST(Queries, AncestorsOfEdgeSwitchInFatTree) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  const SwitchId edge = topo.switch_at(1, 0);
  // Edge 0's parents are its pod's two aggregation switches.
  const auto l2 = ancestors_at_level(topo, edge, 2);
  EXPECT_EQ(l2.size(), 2u);
  for (const SwitchId a : l2) EXPECT_EQ(topo.level_of(a), 2);
  // All four cores reach edge 0.
  const auto l3 = ancestors_at_level(topo, edge, 3);
  EXPECT_EQ(l3.size(), 4u);
}

TEST(Queries, AncestorsAreSortedAndUnique) {
  const Topology topo = Topology::build(fat_tree(4, 4));
  const auto ancestors = ancestors_at_level(topo, topo.switch_at(1, 3), 4);
  for (std::size_t i = 1; i < ancestors.size(); ++i) {
    EXPECT_LT(ancestors[i - 1], ancestors[i]);
  }
}

TEST(Queries, DescendantsOfCore) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  const SwitchId core = topo.switch_at(3, 0);
  // Every core reaches every edge switch in a fat tree.
  EXPECT_EQ(descendants_at_level(topo, core, 1).size(), topo.params().S);
  EXPECT_EQ(descendants_at_level(topo, core, 2).size(), 4u);  // one per pod
}

TEST(Queries, DescendantHosts) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  const SwitchId agg = topo.switch_at(2, 0);
  // An aggregation switch reaches the k/2 edges of its pod → (k/2)^2 hosts.
  const auto hosts = descendant_hosts(topo, agg);
  EXPECT_EQ(hosts.size(), 4u);
  // An edge switch reaches only its own hosts.
  EXPECT_EQ(descendant_hosts(topo, topo.switch_at(1, 2)).size(), 2u);
  // A core reaches everything.
  EXPECT_EQ(descendant_hosts(topo, topo.switch_at(3, 1)).size(),
            topo.num_hosts());
}

TEST(Queries, WalkPreconditions) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  const SwitchId edge = topo.switch_at(1, 0);
  EXPECT_THROW(ancestors_at_level(topo, edge, 1), PreconditionError);
  EXPECT_THROW(descendants_at_level(topo, edge, 2), PreconditionError);
  EXPECT_THROW(ancestors_at_level(topo, edge, 9), PreconditionError);
}

TEST(Queries, SharedPodAncestorsInFatTree) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  // Two aggs of one pod share no parents in a plain fat tree? They do:
  // every core connects to each pod exactly once, but through *different*
  // members — so a given agg shares no core with its pod sibling only if
  // striping sends their uplinks to disjoint cores, which standard striping
  // does (cores 0,1 to member 0; cores 2,3 to member 1).
  const SwitchId agg = topo.switch_at(2, 0);
  EXPECT_TRUE(shared_pod_ancestors(topo, agg, 3).empty());
}

TEST(Queries, SharedPodAncestorsWithTopLevelRedundancy) {
  // FTV <1,0,0> on n=4, k=4: the top level has c=2 links into each L3 pod,
  // landing on distinct members, so L3 pod members share top ancestors —
  // the §7 property ANP needs.
  const Topology topo =
      Topology::build(generate_tree(4, 4, FaultToleranceVector{1, 0, 0}));
  for (std::uint64_t i = 0; i < topo.params().switches_at_level(3); ++i) {
    const SwitchId s = topo.switch_at(3, i);
    EXPECT_FALSE(shared_pod_ancestors(topo, s, 4).empty()) << to_string(s);
  }
}

TEST(Queries, SharedPodAncestorsGoneUnderParallelStriping) {
  StripingConfig cfg;
  cfg.kind = StripingKind::kParallelHeavy;
  const Topology topo = Topology::build(
      generate_tree(4, 4, FaultToleranceVector{1, 0, 0}), cfg);
  // Parallel wiring gives each top switch duplicate links to one member, so
  // at least some L3 switches lose the shared-ancestor property.
  bool any_missing = false;
  for (std::uint64_t i = 0; i < topo.params().switches_at_level(3); ++i) {
    if (shared_pod_ancestors(topo, topo.switch_at(3, i), 4).empty()) {
      any_missing = true;
    }
  }
  EXPECT_TRUE(any_missing);
}

TEST(Queries, Intersects) {
  using V = std::vector<SwitchId>;
  EXPECT_TRUE(intersects(V{SwitchId{1}, SwitchId{3}},
                         V{SwitchId{2}, SwitchId{3}}));
  EXPECT_FALSE(intersects(V{SwitchId{1}}, V{SwitchId{2}}));
  EXPECT_FALSE(intersects(V{}, V{SwitchId{2}}));
  EXPECT_FALSE(intersects(V{}, V{}));
}

TEST(Queries, AncestryRespectsFailuresNot) {
  // Queries are structural: they ignore link state by design.
  const Topology topo = Topology::build(fat_tree(3, 4));
  const auto before = ancestors_at_level(topo, topo.switch_at(1, 0), 3);
  // (No overlay parameter exists; this documents the contract.)
  EXPECT_EQ(before.size(), 4u);
}

}  // namespace
}  // namespace aspen
