// Tests for compound-failure scenarios (§8.3).
#include <gtest/gtest.h>

#include "src/aspen/generator.h"
#include "src/fault/scenarios.h"
#include "src/util/status.h"

namespace aspen {
namespace {

Topology make_tree(std::vector<int> ftv, int k = 4) {
  const int n = static_cast<int>(ftv.size()) + 1;
  return Topology::build(generate_tree(n, k, FaultToleranceVector(ftv)));
}

TEST(FaultScenarios, RandomLinksAreDistinctAndInterSwitch) {
  const Topology topo = make_tree({0, 0, 0});
  Rng rng(3);
  const auto links = random_inter_switch_links(topo, 5, rng);
  EXPECT_EQ(links.size(), 5u);
  for (std::size_t i = 1; i < links.size(); ++i) {
    EXPECT_LT(links[i - 1], links[i]);  // sorted, distinct
  }
  for (const LinkId link : links) {
    EXPECT_GE(topo.link(link).upper_level, 2);
  }
  EXPECT_THROW(random_inter_switch_links(topo, 10'000, rng),
               PreconditionError);
}

TEST(FaultScenarios, FarApartPairPrefersDifferentPods) {
  const Topology topo = make_tree({0, 0, 0});
  Rng rng(11);
  const auto pair = far_apart_pair(topo, 2, rng);
  ASSERT_EQ(pair.size(), 2u);
  const SwitchId a = topo.switch_of(topo.link(pair[0]).upper);
  const SwitchId b = topo.switch_of(topo.link(pair[1]).upper);
  EXPECT_NE(a, b);
  EXPECT_NE(topo.pod_of(a), topo.pod_of(b));
}

TEST(FaultScenarios, SameSwitchPairSharesUpper) {
  const Topology topo = make_tree({0, 0});
  const SwitchId agg = topo.switch_at(2, 0);
  const auto pair = same_switch_pair(topo, agg);
  ASSERT_EQ(pair.size(), 2u);
  EXPECT_EQ(topo.switch_of(topo.link(pair[0]).upper), agg);
  EXPECT_EQ(topo.switch_of(topo.link(pair[1]).upper), agg);
  EXPECT_NE(pair[0], pair[1]);
}

TEST(FaultScenarios, KillPodConnectivityCollectsAllLinks) {
  const Topology topo = make_tree({0, 1, 0});
  const SwitchId l3 = topo.switch_at(3, 0);
  const PodId child = topo.pod_of(
      topo.switch_of(topo.down_neighbors(l3)[0].node));
  const auto links = kill_pod_connectivity(topo, l3, child);
  EXPECT_EQ(links.size(), 2u);  // c_3 = 2
}

TEST(FaultScenarios, FarApartFailuresAreIndependent) {
  // §8.3: "failures far enough apart in a tree have no effect on one
  // another and can be considered individually."
  const Topology topo = make_tree({0, 1, 0});
  Rng rng(5);
  const auto pair = far_apart_pair(topo, 3, rng);
  MultiFailureOptions options;
  options.anp.notify_children = true;
  const MultiFailureOutcome outcome =
      run_multi_failure(ProtocolKind::kAnp, topo, pair, options);
  EXPECT_EQ(outcome.degraded_delivery.undelivered(), 0u);
  EXPECT_TRUE(outcome.tables_restored);
}

TEST(FaultScenarios, CompoundFailureKillingAPodCausesLoss) {
  // §8.3's pathological case: fail *every* link from an L3 switch into one
  // child pod.  Redundancy at L3 is defeated; with no fault tolerance
  // above L3, faithful ANP cannot mask the combination.
  const Topology topo = make_tree({0, 1, 0});
  const SwitchId l3 = topo.switch_at(3, 0);
  const PodId child = topo.pod_of(
      topo.switch_of(topo.down_neighbors(l3)[0].node));
  const auto links = kill_pod_connectivity(topo, l3, child);
  const MultiFailureOutcome outcome =
      run_multi_failure(ProtocolKind::kAnp, topo, links);
  EXPECT_GT(outcome.degraded_delivery.undelivered(), 0u);
  EXPECT_TRUE(outcome.tables_restored);  // recovery still rolls back
}

TEST(FaultScenarios, LspSurvivesCompoundFailures) {
  const Topology topo = make_tree({0, 1, 0});
  Rng rng(23);
  const auto links = random_inter_switch_links(topo, 3, rng);
  const MultiFailureOutcome outcome =
      run_multi_failure(ProtocolKind::kLsp, topo, links);
  // Global re-convergence handles any failure set that leaves hosts
  // physically connected via valid up/down paths.
  EXPECT_EQ(outcome.degraded_delivery.no_route +
                outcome.degraded_delivery.dropped,
            outcome.degraded_delivery.undelivered());
  EXPECT_TRUE(outcome.tables_restored);
  EXPECT_EQ(outcome.failure_reports.size(), 3u);
  EXPECT_EQ(outcome.recovery_reports.size(), 3u);
}

TEST(FaultScenarios, SameSwitchDoubleFailureWithTopRedundancy) {
  // Two downlinks of one L2 switch fail; fault tolerance at the top level
  // plus downward notices reroute around both.
  const Topology topo = make_tree({1, 0, 0});
  const SwitchId l2 = topo.switch_at(2, 0);
  const auto pair = same_switch_pair(topo, l2);
  MultiFailureOptions options;
  options.anp.notify_children = true;
  const MultiFailureOutcome outcome =
      run_multi_failure(ProtocolKind::kAnp, topo, pair, options);
  EXPECT_EQ(outcome.degraded_delivery.undelivered(), 0u);
  EXPECT_TRUE(outcome.tables_restored);
}

TEST(FaultScenarios, SampledDeliveryOption) {
  const Topology topo = make_tree({0, 0});
  MultiFailureOptions options;
  options.sample_flows = 64;
  const std::vector<LinkId> one{topo.links_at_level(2)[0]};
  const MultiFailureOutcome outcome =
      run_multi_failure(ProtocolKind::kLsp, topo, one, options);
  EXPECT_EQ(outcome.degraded_delivery.flows, 64u);
}

// ---- §8.3 sweep: both protocols × both table granularities × scenario ---

struct CompoundCase {
  ProtocolKind kind;
  DestGranularity granularity;
  bool pathological;  ///< kill_pod_connectivity vs far_apart_pair
};

std::string compound_case_name(
    const ::testing::TestParamInfo<CompoundCase>& info) {
  std::string name = to_cstring(info.param.kind);
  name += info.param.granularity == DestGranularity::kHost ? "Host" : "Edge";
  name += info.param.pathological ? "KillPod" : "FarApart";
  return name;
}

class CompoundFailureMatrix : public ::testing::TestWithParam<CompoundCase> {};

TEST_P(CompoundFailureMatrix, DegradedDeliveryConsistentAndTablesRestore) {
  const CompoundCase& c = GetParam();
  const Topology topo = make_tree({0, 1, 0});

  std::vector<LinkId> links;
  if (c.pathological) {
    const SwitchId l3 = topo.switch_at(3, 0);
    const PodId child =
        topo.pod_of(topo.switch_of(topo.down_neighbors(l3)[0].node));
    links = kill_pod_connectivity(topo, l3, child);
  } else {
    Rng rng(5);
    links = far_apart_pair(topo, 3, rng);
  }

  MultiFailureOptions options;
  // Faithful ANP (upward notices only) for the pathological case — that is
  // the configuration §8.3 says compound failures can defeat.  Downward
  // notices for the far-apart case, where masking must be complete.
  options.anp.notify_children = !c.pathological;
  options.granularity = c.granularity;
  const MultiFailureOutcome outcome =
      run_multi_failure(c.kind, topo, links, options);

  // Every walked flow is accounted for, and none loops: stale up/down
  // tables may black-hole, but they cannot cycle.
  const ReachabilityStats& d = outcome.degraded_delivery;
  EXPECT_EQ(d.delivered + d.no_route + d.dropped + d.looped, d.flows);
  EXPECT_EQ(d.looped, 0u);

  if (c.pathological && c.kind == ProtocolKind::kAnp) {
    // Redundancy into the child pod is defeated; without downward notices
    // faithful ANP cannot mask the combination and some flows must die.
    EXPECT_GT(d.undelivered(), 0u);
  } else {
    // LSP re-converges globally (the network stays physically connected),
    // and far-apart failures are independent and fully masked (§8.3).
    EXPECT_EQ(d.undelivered(), 0u);
  }

  // Physics consistency: the protocol cannot beat ground-truth routes
  // computed from the degraded network.
  EXPECT_EQ(outcome.failure_reports.size(), links.size());
  for (const FailureReport& report : outcome.failure_reports) {
    EXPECT_TRUE(report.quiesced);
  }
  EXPECT_TRUE(outcome.tables_restored);
}

INSTANTIATE_TEST_SUITE_P(
    Section8_3, CompoundFailureMatrix,
    ::testing::Values(
        CompoundCase{ProtocolKind::kLsp, DestGranularity::kEdge, false},
        CompoundCase{ProtocolKind::kLsp, DestGranularity::kEdge, true},
        CompoundCase{ProtocolKind::kLsp, DestGranularity::kHost, false},
        CompoundCase{ProtocolKind::kLsp, DestGranularity::kHost, true},
        CompoundCase{ProtocolKind::kAnp, DestGranularity::kEdge, false},
        CompoundCase{ProtocolKind::kAnp, DestGranularity::kEdge, true},
        CompoundCase{ProtocolKind::kAnp, DestGranularity::kHost, false},
        CompoundCase{ProtocolKind::kAnp, DestGranularity::kHost, true}),
    compound_case_name);

TEST(FaultScenarios, EmptyScenarioRejected) {
  const Topology topo = make_tree({0, 0});
  EXPECT_THROW(run_multi_failure(ProtocolKind::kLsp, topo, {}),
               PreconditionError);
}

}  // namespace
}  // namespace aspen
