// Tests for compound-failure scenarios (§8.3).
#include <gtest/gtest.h>

#include "src/aspen/generator.h"
#include "src/fault/scenarios.h"
#include "src/util/status.h"

namespace aspen {
namespace {

Topology make_tree(std::vector<int> ftv, int k = 4) {
  const int n = static_cast<int>(ftv.size()) + 1;
  return Topology::build(generate_tree(n, k, FaultToleranceVector(ftv)));
}

TEST(FaultScenarios, RandomLinksAreDistinctAndInterSwitch) {
  const Topology topo = make_tree({0, 0, 0});
  Rng rng(3);
  const auto links = random_inter_switch_links(topo, 5, rng);
  EXPECT_EQ(links.size(), 5u);
  for (std::size_t i = 1; i < links.size(); ++i) {
    EXPECT_LT(links[i - 1], links[i]);  // sorted, distinct
  }
  for (const LinkId link : links) {
    EXPECT_GE(topo.link(link).upper_level, 2);
  }
  EXPECT_THROW(random_inter_switch_links(topo, 10'000, rng),
               PreconditionError);
}

TEST(FaultScenarios, FarApartPairPrefersDifferentPods) {
  const Topology topo = make_tree({0, 0, 0});
  Rng rng(11);
  const auto pair = far_apart_pair(topo, 2, rng);
  ASSERT_EQ(pair.size(), 2u);
  const SwitchId a = topo.switch_of(topo.link(pair[0]).upper);
  const SwitchId b = topo.switch_of(topo.link(pair[1]).upper);
  EXPECT_NE(a, b);
  EXPECT_NE(topo.pod_of(a), topo.pod_of(b));
}

TEST(FaultScenarios, SameSwitchPairSharesUpper) {
  const Topology topo = make_tree({0, 0});
  const SwitchId agg = topo.switch_at(2, 0);
  const auto pair = same_switch_pair(topo, agg);
  ASSERT_EQ(pair.size(), 2u);
  EXPECT_EQ(topo.switch_of(topo.link(pair[0]).upper), agg);
  EXPECT_EQ(topo.switch_of(topo.link(pair[1]).upper), agg);
  EXPECT_NE(pair[0], pair[1]);
}

TEST(FaultScenarios, KillPodConnectivityCollectsAllLinks) {
  const Topology topo = make_tree({0, 1, 0});
  const SwitchId l3 = topo.switch_at(3, 0);
  const PodId child = topo.pod_of(
      topo.switch_of(topo.down_neighbors(l3)[0].node));
  const auto links = kill_pod_connectivity(topo, l3, child);
  EXPECT_EQ(links.size(), 2u);  // c_3 = 2
}

TEST(FaultScenarios, FarApartFailuresAreIndependent) {
  // §8.3: "failures far enough apart in a tree have no effect on one
  // another and can be considered individually."
  const Topology topo = make_tree({0, 1, 0});
  Rng rng(5);
  const auto pair = far_apart_pair(topo, 3, rng);
  MultiFailureOptions options;
  options.anp.notify_children = true;
  const MultiFailureOutcome outcome =
      run_multi_failure(ProtocolKind::kAnp, topo, pair, options);
  EXPECT_EQ(outcome.degraded_delivery.undelivered(), 0u);
  EXPECT_TRUE(outcome.tables_restored);
}

TEST(FaultScenarios, CompoundFailureKillingAPodCausesLoss) {
  // §8.3's pathological case: fail *every* link from an L3 switch into one
  // child pod.  Redundancy at L3 is defeated; with no fault tolerance
  // above L3, faithful ANP cannot mask the combination.
  const Topology topo = make_tree({0, 1, 0});
  const SwitchId l3 = topo.switch_at(3, 0);
  const PodId child = topo.pod_of(
      topo.switch_of(topo.down_neighbors(l3)[0].node));
  const auto links = kill_pod_connectivity(topo, l3, child);
  const MultiFailureOutcome outcome =
      run_multi_failure(ProtocolKind::kAnp, topo, links);
  EXPECT_GT(outcome.degraded_delivery.undelivered(), 0u);
  EXPECT_TRUE(outcome.tables_restored);  // recovery still rolls back
}

TEST(FaultScenarios, LspSurvivesCompoundFailures) {
  const Topology topo = make_tree({0, 1, 0});
  Rng rng(23);
  const auto links = random_inter_switch_links(topo, 3, rng);
  const MultiFailureOutcome outcome =
      run_multi_failure(ProtocolKind::kLsp, topo, links);
  // Global re-convergence handles any failure set that leaves hosts
  // physically connected via valid up/down paths.
  EXPECT_EQ(outcome.degraded_delivery.no_route +
                outcome.degraded_delivery.dropped,
            outcome.degraded_delivery.undelivered());
  EXPECT_TRUE(outcome.tables_restored);
  EXPECT_EQ(outcome.failure_reports.size(), 3u);
  EXPECT_EQ(outcome.recovery_reports.size(), 3u);
}

TEST(FaultScenarios, SameSwitchDoubleFailureWithTopRedundancy) {
  // Two downlinks of one L2 switch fail; fault tolerance at the top level
  // plus downward notices reroute around both.
  const Topology topo = make_tree({1, 0, 0});
  const SwitchId l2 = topo.switch_at(2, 0);
  const auto pair = same_switch_pair(topo, l2);
  MultiFailureOptions options;
  options.anp.notify_children = true;
  const MultiFailureOutcome outcome =
      run_multi_failure(ProtocolKind::kAnp, topo, pair, options);
  EXPECT_EQ(outcome.degraded_delivery.undelivered(), 0u);
  EXPECT_TRUE(outcome.tables_restored);
}

TEST(FaultScenarios, SampledDeliveryOption) {
  const Topology topo = make_tree({0, 0});
  MultiFailureOptions options;
  options.sample_flows = 64;
  const std::vector<LinkId> one{topo.links_at_level(2)[0]};
  const MultiFailureOutcome outcome =
      run_multi_failure(ProtocolKind::kLsp, topo, one, options);
  EXPECT_EQ(outcome.degraded_delivery.flows, 64u);
}

TEST(FaultScenarios, EmptyScenarioRejected) {
  const Topology topo = make_tree({0, 0});
  EXPECT_THROW(run_multi_failure(ProtocolKind::kLsp, topo, {}),
               PreconditionError);
}

}  // namespace
}  // namespace aspen
