// Flow-plane differential harness (ISSUE 10): every path the flow plane
// picks must byte-match an independent packet_walk replay under the same
// seed — healthy, under each single-link failure, and across a gray link —
// plus thread-invariance, loop-freedom/TTL, ECMP-policy distribution
// properties, exact campaign loss accounting, and the flow_chaos golden
// trace.
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/aspen/generator.h"
#include "src/fault/chaos.h"
#include "src/obs/obs.h"
#include "src/routing/ecmp.h"
#include "src/routing/packet_walk.h"
#include "src/routing/updown.h"
#include "src/topo/link_state.h"
#include "src/topo/topology.h"
#include "src/traffic/flow_plane.h"
#include "src/traffic/patterns.h"
#include "src/util/rng.h"
#include "tests/trace_golden.h"

namespace aspen {
namespace {

Topology fig3_topology(const char* ftv) {
  return Topology::build(
      generate_tree(4, 6, FaultToleranceVector::parse(ftv)));
}

Topology small_topology() {
  return Topology::build(
      generate_tree(3, 4, FaultToleranceVector::parse("<1,0>")));
}

/// The walker status a terminal flow fate corresponds to.
WalkStatus expected_status(FlowFate fate) {
  switch (fate) {
    case FlowFate::kDelivered: return WalkStatus::kDelivered;
    case FlowFate::kBlackholed: return WalkStatus::kDropped;
    case FlowFate::kLooped: return WalkStatus::kTtlExceeded;
    case FlowFate::kNoRoute: return WalkStatus::kNoRoute;
    case FlowFate::kInflight: break;
  }
  ADD_FAILURE() << "non-terminal fate";
  return WalkStatus::kNoRoute;
}

/// Walks every admitted flow through both walkers and requires identical
/// node paths and identical outcome classes.
void expect_differential_match(const Topology& topo, const FlowPlane& plane,
                               const RoutingState& state,
                               const LinkStateOverlay& overlay,
                               bool apply_health, std::uint64_t health_seed,
                               const char* context) {
  const ecmp::EcmpReadView view(state);
  const TableRouter router(state);
  std::vector<NodeId> plane_path;
  for (std::uint64_t i = 0; i < plane.admitted(); ++i) {
    const Flow flow = plane.flow(i);
    const FlowPlane::Attempt attempt =
        plane.walk_one(i, view, overlay, 0.0, &plane_path);

    WalkOptions walk_options;
    walk_options.flow_seed = plane.flow_seed(i);
    walk_options.apply_health = apply_health;
    walk_options.health_seed = health_seed;
    const WalkResult walk =
        walk_packet(topo, router, overlay, flow.src, flow.dst, walk_options);

    ASSERT_EQ(expected_status(attempt.outcome), walk.status)
        << context << " flow " << i << " (" << flow.src.value() << " -> "
        << flow.dst.value() << ")";
    ASSERT_EQ(plane_path, walk.path)
        << context << " flow " << i << " path diverged";
    ASSERT_EQ(attempt.hops, walk.hops) << context << " flow " << i;
  }
}

// ---- differential: flow plane == packet walker, node for node ----------

TEST(FlowPlaneDifferential, MatchesPacketWalkerHealthy) {
  for (const char* ftv : {"<0,2,0>", "<2,0,0>", "<0,2,2>"}) {
    const Topology topo = fig3_topology(ftv);
    const RoutingState state = compute_updown_routes(topo);
    const LinkStateOverlay overlay(topo);

    FlowPlaneOptions options;
    options.base_seed = 42;
    FlowPlane plane(topo, options);
    Rng rng(7);
    std::vector<Flow> flows = permutation_traffic(topo, rng);
    plane.admit(flows);
    plane.admit_uniform(128);

    expect_differential_match(topo, plane, state, overlay,
                              /*apply_health=*/false, 0, ftv);
  }
}

TEST(FlowPlaneDifferential, MatchesPacketWalkerUnderEachSingleLinkFailure) {
  const Topology topo = fig3_topology("<0,2,0>");
  const RoutingState state = compute_updown_routes(topo);

  FlowPlaneOptions options;
  options.base_seed = 9;
  FlowPlane plane(topo, options);
  plane.admit_uniform(48);

  // Stale-tables scenario: the fabric loses one link, the tables have not
  // heard — both walkers must rotate (or drop) identically.
  for (std::uint64_t l = 0; l < topo.num_links(); ++l) {
    LinkStateOverlay overlay(topo);
    overlay.fail(LinkId{static_cast<std::uint32_t>(l)});
    expect_differential_match(topo, plane, state, overlay,
                              /*apply_health=*/false, 0,
                              "single-link failure");
  }
}

TEST(FlowPlaneDifferential, MatchesPacketWalkerAcrossGrayLink) {
  const Topology topo = fig3_topology("<0,2,0>");
  const RoutingState state = compute_updown_routes(topo);
  LinkStateOverlay overlay(topo);
  // Degrade a mid-fabric link: the shared gray-drop hash must give both
  // walkers the same per-flow verdict.
  const LinkId gray = topo.links_at_level(2).front();
  overlay.set_gray(gray, 0.5);

  FlowPlaneOptions options;
  options.base_seed = 11;
  options.apply_health = true;
  options.health_seed = 77;
  FlowPlane plane(topo, options);
  plane.admit_uniform(160);

  expect_differential_match(topo, plane, state, overlay,
                            /*apply_health=*/true, 77, "gray link");
}

// ---- thread invariance --------------------------------------------------

TEST(FlowPlaneDeterminism, ByteIdenticalFatesAcrossThreadCounts) {
  const Topology topo = fig3_topology("<0,2,0>");
  const RoutingState state = compute_updown_routes(topo);

  const auto run_at = [&](int threads) {
    FlowPlaneOptions options;
    options.base_seed = 5;
    options.threads = threads;
    options.patience = 2;
    FlowPlane plane(topo, options);
    plane.admit_uniform(4096);

    LinkStateOverlay overlay(topo);
    plane.step(state, overlay);
    overlay.fail(topo.links_at_level(2).front());
    plane.step(state, overlay);
    plane.step(state, overlay);
    overlay.recover_all();
    plane.admit_uniform(1024);
    plane.step(state, overlay);
    return plane.fate_fingerprint();
  };

  const std::uint64_t base = run_at(1);
  for (const int threads : {2, 4, 8}) {
    EXPECT_EQ(base, run_at(threads)) << threads << " threads";
  }
}

// ---- loop freedom and TTL ----------------------------------------------

TEST(FlowPlaneLoops, ConvergedTablesAreLoopFree) {
  const Topology topo = fig3_topology("<0,2,2>");
  const RoutingState state = compute_updown_routes(topo);
  const LinkStateOverlay overlay(topo);

  FlowPlane plane(topo, {});
  Rng rng(3);
  std::vector<Flow> flows = permutation_traffic(topo, rng);
  plane.admit(flows);
  plane.step(state, overlay);

  EXPECT_EQ(plane.admitted(), plane.delivered());
  EXPECT_EQ(0u, plane.looped());
  // up*/down* paths cross at most 2·(levels − 1) switch links plus the two
  // host links.
  for (std::uint64_t i = 0; i < plane.admitted(); ++i) {
    EXPECT_LE(plane.hops(i), 2 * (4 - 1) + 2) << "flow " << i;
  }
}

TEST(FlowPlaneLoops, HandMadeLoopTripsTtlAndFateIsLooped) {
  const Topology topo = small_topology();
  RoutingState state = compute_updown_routes(topo);
  const LinkStateOverlay overlay(topo);

  // Mutate the tables into a 2-cycle for one destination: the source's
  // edge switch points up at aggregation switch X, and X points back down.
  const HostId src{0};
  const HostId dst{static_cast<std::uint32_t>(topo.num_hosts() - 1)};
  const SwitchId edge = topo.edge_switch_of(src);
  const Topology::Neighbor up = topo.up_neighbors(edge)[0];
  const SwitchId agg = topo.switch_of(up.node);
  const std::uint64_t d = state.dest_index(dst);

  RoutingTables::Entry& edge_row = state.tables.entry_at(edge.value(), d);
  const Topology::Neighbor up_hop{up.node, up.link};
  state.tables.assign_hops(edge_row, std::span<const Topology::Neighbor>(
                                         &up_hop, 1));
  RoutingTables::Entry& agg_row = state.tables.entry_at(agg.value(), d);
  const Topology::Neighbor down_hop{topo.node_of(edge), up.link};
  state.tables.assign_hops(agg_row, std::span<const Topology::Neighbor>(
                                        &down_hop, 1));
  state.digests.clear();  // hand-mutated state no longer matches its digests

  FlowPlaneOptions options;
  options.ttl = 16;
  options.patience = 1;
  FlowPlane plane(topo, options);
  const Flow flow{src, dst};
  plane.admit(std::span<const Flow>(&flow, 1));
  plane.step(state, overlay);

  EXPECT_EQ(FlowFate::kLooped, plane.fate(0));
  EXPECT_EQ(1u, plane.looped());
  EXPECT_EQ(16u, plane.hops(0));  // walked to the TTL, no further
  EXPECT_EQ(plane.admitted(), plane.delivered() + plane.lost() +
                                  plane.inflight());
}

// ---- 50-step campaign: exact loss accounting ----------------------------

TEST(FlowPlaneCampaign, FiftyStepAccountingIdentityExact) {
  const Topology topo = fig3_topology("<0,2,0>");
  for (const ProtocolKind kind : {ProtocolKind::kAnp, ProtocolKind::kLsp}) {
    FlowChaosOptions options;
    options.chaos.seed = 1234;
    options.chaos.num_events = 50;
    options.chaos.check_flows = 16;  // keep the campaign's own checks cheap
    options.plane.base_seed = 99;
    options.plane.patience = 2;
    options.total_flows = 10200;
    const FlowChaosReport report = run_flow_chaos(kind, topo, options);

    EXPECT_EQ(10200u, report.admitted) << to_cstring(kind);
    EXPECT_EQ(report.lost,
              report.admitted - report.delivered - report.inflight)
        << to_cstring(kind);
    EXPECT_EQ(report.lost, report.blackholed + report.looped + report.no_route)
        << to_cstring(kind);
    EXPECT_GT(report.delivered, 0u) << to_cstring(kind);
    EXPECT_GE(report.epochs, 51u) << to_cstring(kind);
    EXPECT_TRUE(report.chaos.tables_restored) << to_cstring(kind);
    EXPECT_EQ(0u, report.chaos.ground_truth_violations) << to_cstring(kind);
  }
}

// ---- ECMP policy properties ---------------------------------------------

// Seeded-hash ECMP must spread flows across all equal-cost uplinks.  The
// bound is a chi-square-style statistic kept in integers: with u uplinks
// and n flows at one edge switch, Σ_j (u·c_j − n)² ≤ K·u·n  ⇔  χ² ≤ K.
// K = 16 is far above the u−1 expectation yet far below what any stuck or
// missing uplink produces (one dead choice alone contributes χ² ≈ n/u).
TEST(FlowPlanePolicy, SeededHashSpreadsAcrossEqualCostUplinks) {
  const Topology topo = small_topology();
  const RoutingState state = compute_updown_routes(topo);
  const LinkStateOverlay overlay(topo);
  const ecmp::EcmpReadView view(state);

  FlowPlaneOptions options;
  options.base_seed = 21;
  FlowPlane plane(topo, options);
  plane.admit_uniform(4000);

  // Tally the chosen ingress uplink per edge switch (flows delivered at
  // their own edge never consult the row; skip them).
  std::vector<std::vector<std::uint64_t>> uplink_counts(topo.num_switches());
  for (std::uint64_t s = 0; s < topo.num_switches(); ++s) {
    const SwitchId id{static_cast<std::uint32_t>(s)};
    if (topo.level_of(id) == 1) {
      uplink_counts[s].assign(topo.up_neighbors(id).size(), 0);
    }
  }
  std::vector<NodeId> path;
  for (std::uint64_t i = 0; i < plane.admitted(); ++i) {
    const Flow flow = plane.flow(i);
    const SwitchId edge = topo.edge_switch_of(flow.src);
    if (edge == topo.edge_switch_of(flow.dst)) continue;
    const FlowPlane::Attempt attempt =
        plane.walk_one(i, view, overlay, 0.0, &path);
    ASSERT_EQ(FlowFate::kDelivered, attempt.outcome);
    ASSERT_GE(path.size(), 3u);
    const std::span<const Topology::Neighbor> ups = topo.up_neighbors(edge);
    bool found = false;
    for (std::size_t j = 0; j < ups.size(); ++j) {
      if (ups[j].node == path[2]) {
        ++uplink_counts[edge.value()][j];
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found) << "first hop is not an uplink of the ingress edge";
  }

  for (std::uint64_t s = 0; s < topo.num_switches(); ++s) {
    const std::vector<std::uint64_t>& counts = uplink_counts[s];
    if (counts.empty()) continue;
    const std::uint64_t u = counts.size();
    std::uint64_t n = 0;
    for (const std::uint64_t c : counts) n += c;
    ASSERT_GT(n, 100u) << "edge switch " << s << " saw too few flows";
    std::uint64_t chi_scaled = 0;  // Σ (u·c − n)², all integer
    for (const std::uint64_t c : counts) {
      const std::int64_t dev =
          static_cast<std::int64_t>(u * c) - static_cast<std::int64_t>(n);
      chi_scaled += static_cast<std::uint64_t>(dev * dev);
      EXPECT_GT(c, 0u) << "uplink starved at edge switch " << s;
    }
    EXPECT_LE(chi_scaled, 16u * u * n) << "edge switch " << s;
  }
}

TEST(FlowPlanePolicy, LowestIsDeterministicRegardlessOfSeed) {
  const Topology topo = small_topology();
  const RoutingState state = compute_updown_routes(topo);
  const LinkStateOverlay overlay(topo);

  Rng rng(17);
  const std::vector<Flow> flows = uniform_random_traffic(topo, 300, rng);

  const auto run_with_seed = [&](std::uint64_t seed) {
    FlowPlaneOptions options;
    options.base_seed = seed;
    options.policy = NextHopPolicy::kLowest;
    FlowPlane plane(topo, options);
    plane.admit(flows);
    plane.step(state, overlay);
    return plane;
  };

  const FlowPlane a = run_with_seed(1);
  const FlowPlane b = run_with_seed(0xDEADBEEF);
  ASSERT_EQ(a.admitted(), b.admitted());
  for (std::uint64_t i = 0; i < a.admitted(); ++i) {
    EXPECT_EQ(a.fate(i), b.fate(i)) << "flow " << i;
    EXPECT_EQ(a.path_hash(i), b.path_hash(i)) << "flow " << i;
    EXPECT_EQ(a.hops(i), b.hops(i)) << "flow " << i;
  }
  EXPECT_EQ(a.fate_fingerprint(), b.fate_fingerprint());
}

TEST(FlowPlanePolicy, WeightedDeliversAndUsesEveryUplinkEventually) {
  const Topology topo = small_topology();
  const RoutingState state = compute_updown_routes(topo);
  const LinkStateOverlay overlay(topo);

  FlowPlaneOptions options;
  options.base_seed = 8;
  options.policy = NextHopPolicy::kWeighted;
  FlowPlane plane(topo, options);
  plane.admit_uniform(2000);
  plane.step(state, overlay);

  EXPECT_EQ(plane.admitted(), plane.delivered());
  EXPECT_EQ(0u, plane.lost());
}

TEST(FlowPlanePolicy, ParseRoundTrips) {
  for (const NextHopPolicy policy :
       {NextHopPolicy::kSeededHash, NextHopPolicy::kLowest,
        NextHopPolicy::kWeighted}) {
    NextHopPolicy parsed{};
    ASSERT_TRUE(parse_next_hop_policy(to_cstring(policy), parsed));
    EXPECT_EQ(policy, parsed);
  }
  NextHopPolicy parsed{};
  EXPECT_FALSE(parse_next_hop_policy("bogus", parsed));
}

// ---- golden trace -------------------------------------------------------

std::string flow_chaos_trace(int threads) {
  obs::ObsConfig config;
  config.trace = true;
  config.trace_capacity = 4096;
  obs::ScopedObs scoped(config);

  const Topology topo = fig3_topology("<0,2,0>");
  for (const ProtocolKind kind : {ProtocolKind::kAnp, ProtocolKind::kLsp}) {
    FlowChaosOptions options;
    options.chaos.seed = 31;
    options.chaos.num_events = 1;  // single fault (plus its unwind)
    options.chaos.check_flows = 8;
    options.plane.base_seed = 13;
    options.plane.threads = threads;
    options.total_flows = 96;
    const FlowChaosReport report = run_flow_chaos(kind, topo, options);
    EXPECT_EQ(report.admitted,
              report.delivered + report.lost + report.inflight);
  }
  return obs::tracer().to_jsonl();
}

TEST(FlowPlaneGolden, FlowChaosTraceMatchesGolden) {
  EXPECT_TRUE(golden::matches_golden("flow_chaos.jsonl",
                                     flow_chaos_trace(/*threads=*/1)));
}

TEST(FlowPlaneGolden, FlowChaosTraceByteIdenticalAcrossThreadCounts) {
  const std::string base = flow_chaos_trace(1);
  for (const int threads : {2, 4}) {
    EXPECT_EQ(base, flow_chaos_trace(threads)) << threads << " threads";
  }
}

}  // namespace
}  // namespace aspen

// Custom main: strip `--regen-goldens` before gtest parses the command
// line, so `./test_flow_plane --regen-goldens` refreshes tests/golden/.
int main(int argc, char** argv) {
  std::vector<char*> kept;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--regen-goldens") == 0) {
      aspen::golden::regen_flag() = true;
      continue;
    }
    kept.push_back(argv[i]);
  }
  int kept_argc = static_cast<int>(kept.size());
  kept.push_back(nullptr);
  ::testing::InitGoogleTest(&kept_argc, kept.data());
  return RUN_ALL_TESTS();
}
