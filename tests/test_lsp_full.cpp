// Equivalence of the fully distributed LSDB implementation and the fast
// LSP model — the justification for benchmarking with the fast one.
#include <gtest/gtest.h>

#include "src/aspen/generator.h"
#include "src/proto/lsp.h"
#include "src/proto/lsp_full.h"
#include "src/routing/reachability.h"
#include "src/util/status.h"

namespace aspen {
namespace {

TEST(LspFull, ConvergesToGlobalRecomputation) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  LspLsdbSimulation lsp(topo);
  const LinkId link = topo.links_at_level(3)[0];
  (void)lsp.simulate_link_failure(link);

  LinkStateOverlay failed(topo);
  failed.fail(link);
  const RoutingState expected = compute_updown_routes(topo, failed);
  EXPECT_EQ(switches_with_changed_tables(lsp.tables(), expected), 0u);
}

TEST(LspFull, MatchesFastModelOnEveryFailure) {
  for (const auto& ftv : std::vector<std::vector<int>>{{0, 0}, {1, 0, 0}}) {
    const int n = static_cast<int>(ftv.size()) + 1;
    const Topology topo =
        Topology::build(generate_tree(n, 4, FaultToleranceVector(ftv)));
    SCOPED_TRACE(topo.describe());
    LspSimulation fast(topo);
    LspLsdbSimulation full(topo);
    for (Level level = 2; level <= topo.levels(); ++level) {
      for (const LinkId link : topo.links_at_level(level)) {
        const FailureReport a = fast.simulate_link_failure(link);
        const FailureReport b = full.simulate_link_failure(link);
        EXPECT_EQ(a.switches_reacted, b.switches_reacted)
            << "link " << link.value();
        EXPECT_EQ(a.switches_informed, b.switches_informed);
        EXPECT_EQ(a.messages_sent, b.messages_sent);
        EXPECT_NEAR(a.convergence_time_ms, b.convergence_time_ms, 1e-6);
        EXPECT_EQ(
            switches_with_changed_tables(fast.tables(), full.tables()), 0u);
        (void)fast.simulate_link_recovery(link);
        (void)full.simulate_link_recovery(link);
      }
    }
  }
}

TEST(LspFull, RecoveryRestoresInitialTables) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  LspLsdbSimulation lsp(topo);
  const RoutingState initial = lsp.tables();
  for (const LinkId link : topo.links_at_level(2)) {
    (void)lsp.simulate_link_failure(link);
    (void)lsp.simulate_link_recovery(link);
  }
  EXPECT_EQ(switches_with_changed_tables(initial, lsp.tables()), 0u);
}

TEST(LspFull, SequenceNumbersSuppressStaleFloods) {
  // After many events the per-origin sequence numbers keep rising; a
  // replayed failure must behave identically (no stale-acceptance bugs).
  const Topology topo = Topology::build(fat_tree(3, 4));
  LspLsdbSimulation lsp(topo);
  const LinkId link = topo.links_at_level(3)[2];
  const FailureReport first = lsp.simulate_link_failure(link);
  (void)lsp.simulate_link_recovery(link);
  const FailureReport second = lsp.simulate_link_failure(link);
  EXPECT_EQ(first.switches_reacted, second.switches_reacted);
  EXPECT_EQ(first.messages_sent, second.messages_sent);
  (void)lsp.simulate_link_recovery(link);
}

TEST(LspFull, MultipleOverlappingFailures) {
  // The distributed views stay coherent across accumulated failures —
  // something the fast model gets by construction but the LSDB must earn.
  const Topology topo = Topology::build(fat_tree(3, 6));
  LspLsdbSimulation lsp(topo);
  const std::vector<LinkId> links{topo.links_at_level(3)[0],
                                  topo.links_at_level(2)[7],
                                  topo.links_at_level(3)[9]};
  for (const LinkId link : links) (void)lsp.simulate_link_failure(link);

  LinkStateOverlay failed(topo);
  for (const LinkId link : links) failed.fail(link);
  EXPECT_EQ(switches_with_changed_tables(
                lsp.tables(), compute_updown_routes(topo, failed)),
            0u);

  // Post-convergence delivery over the degraded fabric is complete.
  const TableRouter router(lsp.tables());
  EXPECT_EQ(measure_all_pairs(topo, router, lsp.overlay()).undelivered(),
            0u);

  for (auto it = links.rbegin(); it != links.rend(); ++it) {
    (void)lsp.simulate_link_recovery(*it);
  }
}

TEST(LspFull, SpfHoldDownDelaysInstallsOnly) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  DelayModel paced;
  paced.spf_delay = 5000.0;
  LspLsdbSimulation fastspf(topo);
  LspLsdbSimulation slowspf(topo, paced);
  const LinkId link = topo.links_at_level(3)[0];
  const FailureReport a = fastspf.simulate_link_failure(link);
  const FailureReport b = slowspf.simulate_link_failure(link);
  EXPECT_EQ(a.switches_reacted, b.switches_reacted);
  EXPECT_NEAR(b.convergence_time_ms - a.convergence_time_ms, 5000.0, 1e-6);
  EXPECT_EQ(switches_with_changed_tables(fastspf.tables(), slowspf.tables()),
            0u);
}

TEST(LspFull, DoubleFailureRejected) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  LspLsdbSimulation lsp(topo);
  const LinkId link = topo.links_at_level(2)[0];
  (void)lsp.simulate_link_failure(link);
  EXPECT_THROW((void)lsp.simulate_link_failure(link), PreconditionError);
}

}  // namespace
}  // namespace aspen
