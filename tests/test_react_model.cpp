// Validation of the analytic ANP reacting-switch model (src/analysis/react)
// against the discrete-event simulation, per failure level, on the small
// tree pairs that Figure 10 simulates.
#include <gtest/gtest.h>

#include "src/analysis/react.h"
#include "src/aspen/fixed_hosts.h"
#include "src/aspen/generator.h"
#include "src/proto/anp.h"
#include "src/sim/stats.h"
#include "src/util/status.h"

namespace aspen {
namespace {

// Measures the DES reacting-switch count averaged over all links whose
// upper endpoint is at `level`.
double measured_reacting(const Topology& topo, Level level) {
  AnpSimulation anp(topo);
  Summary reacted;
  for (const LinkId link : topo.links_at_level(level)) {
    const FailureReport report = anp.simulate_link_failure(link);
    reacted.add(static_cast<double>(report.switches_reacted));
    (void)anp.simulate_link_recovery(link);
  }
  return reacted.mean();
}

TEST(ReactModel, MatchesSimulationOnVl2Pairs) {
  // The paper's <k/2−1, 0, …, 0> trees under faithful (upward-only) ANP.
  for (const auto& [k, n_fat] :
       std::vector<std::pair<int, int>>{{4, 3}, {6, 3}, {4, 4}}) {
    const TreeParams params = design_fixed_host_tree(n_fat, k, 1);
    const Topology topo = Topology::build(params);
    for (Level level = 2; level <= params.n; ++level) {
      const double analytic =
          static_cast<double>(anp_reacting_switches(params, level));
      const double measured = measured_reacting(topo, level);
      EXPECT_NEAR(measured, analytic, analytic * 0.25 + 0.5)
          << "k=" << k << " n_fat=" << n_fat << " level=" << level;
    }
  }
}

TEST(ReactModel, ExactOnFaultTolerantLevels) {
  // At a fault-tolerant level the reaction is exactly the two endpoints.
  const TreeParams params = design_fixed_host_tree(3, 4, 1);
  const Topology topo = Topology::build(params);
  EXPECT_EQ(anp_reacting_switches(params, params.n), 2u);
  EXPECT_DOUBLE_EQ(measured_reacting(topo, params.n), 2.0);
}

TEST(ReactModel, WaveGrowsGeometricallyThenSaturates) {
  // FTV <1,0,0,0> (n=5, k=4): failure at L2 notifies (k/2)^j ancestors per
  // level until pod sizes cap the growth.
  const TreeParams params = generate_tree(5, 4, FaultToleranceVector{1, 0, 0, 0});
  // Wave from L2 to L5: 2 + (2 + 4 + min(8, m_5)).
  const std::uint64_t m5 = params.m[5];
  EXPECT_EQ(anp_reacting_switches(params, 2),
            2u + 2u + 4u + std::min<std::uint64_t>(8, m5));
}

TEST(ReactModel, HostLinkFailuresClimbToRoots) {
  const TreeParams params = fat_tree(3, 4);
  // 1 edge switch + its 2 parents + min(4, m_3 = 4) roots.
  EXPECT_EQ(anp_reacting_switches(params, 1), 1u + 2u + 4u);
}

TEST(ReactModel, AverageIncludesOrExcludesHostLinks) {
  const TreeParams params = design_fixed_host_tree(3, 4, 1);
  const double with_hosts =
      anp_average_reacting_switches(params, /*include_host_links=*/true);
  const double without =
      anp_average_reacting_switches(params, /*include_host_links=*/false);
  // Host-link failures trigger the deepest waves → they raise the mean.
  EXPECT_GT(with_hosts, without);
}

TEST(ReactModel, LspReactsEverywhere) {
  const TreeParams params = fat_tree(3, 8);
  EXPECT_EQ(lsp_reacting_switches(params), params.total_switches());
}

TEST(ReactModel, AnpReactionIsSmallFractionAtScale) {
  // The Fig. 10(c) claim: "only 10-20% of Aspen switches react to each
  // failure" (we bound it at 25% to absorb small-tree granularity).
  for (const auto& [k, n_fat] :
       std::vector<std::pair<int, int>>{{16, 3}, {32, 3}, {16, 4}}) {
    const TreeParams params = design_fixed_host_tree(n_fat, k, 1);
    const double avg =
        anp_average_reacting_switches(params, /*include_host_links=*/true);
    EXPECT_LT(avg, 0.25 * static_cast<double>(params.total_switches()))
        << "k=" << k << " n=" << n_fat;
  }
}

TEST(ReactModel, PreconditionsThrow) {
  const TreeParams params = fat_tree(3, 4);
  EXPECT_THROW((void)anp_reacting_switches(params, 0), PreconditionError);
  EXPECT_THROW((void)anp_reacting_switches(params, 4), PreconditionError);
}

}  // namespace
}  // namespace aspen
