// Corpus fixture: true positive for unordered-iteration.  Never compiled.
#include <cstdint>
#include <unordered_map>
std::uint64_t table_digest(
    const std::unordered_map<std::uint32_t, std::uint64_t>& table) {
  std::uint64_t h = 0;
  for (const auto& kv : table) {
    h = h * 1099511628211ULL + kv.second;
  }
  return h;
}
