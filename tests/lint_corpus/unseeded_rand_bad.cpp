// Corpus fixture: true positive for unseeded-rand.  Never compiled.
#include <cstdlib>
int roll_d6() {
  return std::rand() % 6 + 1;
}
