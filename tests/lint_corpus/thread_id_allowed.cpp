// Corpus fixture: suppressed thread-id.  Never compiled.
#include <sstream>
#include <thread>
std::string worker_tag() {
  std::ostringstream os;
  os << std::this_thread::get_id();  // aspen-lint: allow(thread-id) -- fixture: debug log line stripped before any exported artifact
  return os.str();
}
