// Corpus fixture: the well-formed counterpart of bad_suppression_bad —
// a complete annotation produces no bad-suppression finding.  Never compiled.
#include <cstdlib>
const char* with_reason() {
  return std::getenv("HOME");  // aspen-lint: allow(getenv) -- fixture: well-formed annotation with a written rationale
}
