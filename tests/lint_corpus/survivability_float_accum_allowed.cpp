// Corpus fixture: suppressed float-accum.  Never compiled.
double mean_of_chunk(const double* values, int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    // aspen-lint: allow(float-accum) -- fixture: report-time series in fixed index order, not a cross-chunk accumulator
    total += values[i];
  }
  return total / n;
}
