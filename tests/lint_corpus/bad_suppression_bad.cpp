// Corpus fixture: true positive for bad-suppression.  Never compiled.
#include <cstdlib>
const char* no_reason() {
  return std::getenv("HOME");  // aspen-lint: allow(getenv)
}
const char* unknown_rule() {
  return std::getenv("PATH");  // aspen-lint: allow(no-such-rule) -- the rule id is misspelled
}
