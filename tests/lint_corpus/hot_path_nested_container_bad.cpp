// Corpus fixture: true positives for hot-path-nested-container.  Never
// compiled.  Models the pre-arena forwarding layout: one heap vector per
// table row plus a node-based index member.
#include <map>
#include <vector>

struct OldForwardingTables {
  std::vector<std::vector<int>> next_hops;
  std::map<int, int> dest_index_;
};
