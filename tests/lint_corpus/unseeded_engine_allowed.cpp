// Corpus fixture: suppressed unseeded-engine.  Never compiled.
#include <random>
unsigned draw() {
  std::mt19937_64 gen;  // aspen-lint: allow(unseeded-engine) -- fixture: self-test exercising the engine's documented default stream
  return static_cast<unsigned>(gen());
}
