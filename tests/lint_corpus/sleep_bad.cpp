// Corpus fixture: true positive for sleep.  Never compiled.
#include <chrono>
#include <thread>
void settle() {
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
}
