// Corpus fixture: true positive for random-device.  Never compiled.
#include <random>
unsigned fresh_entropy() {
  std::random_device rd;
  return rd();
}
