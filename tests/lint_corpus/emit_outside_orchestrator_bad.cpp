// Corpus fixture: true positive for emit-outside-orchestrator.  Never compiled.
#include <cstdint>
#include "src/obs/obs.h"
#include "src/util/parallel.h"
void route_all(std::uint64_t rows) {
  aspen::parallel::parallel_for_blocks(
      rows, 0, [](std::uint64_t begin, std::uint64_t end, int) {
        for (std::uint64_t i = begin; i < end; ++i) {
          aspen::obs::count("routing.rows_computed");
        }
      });
}
