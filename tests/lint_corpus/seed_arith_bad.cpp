// Corpus fixture: true positive for seed-arith.  Never compiled.
#include <cstdint>
std::uint64_t stream_for_link(std::uint64_t seed, std::uint64_t link) {
  return seed ^ (0x9E3779B97F4A7C15ULL + link);
}
