// Corpus fixture: true positive for assert-side-effect.  Never compiled.
#include "src/util/contracts.h"
void drain_one(int& pending) {
  ASPEN_ASSERT(--pending >= 0, "queue underflow");
}
