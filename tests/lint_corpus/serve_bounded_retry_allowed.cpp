// Corpus fixture: serve-bounded-retry suppression.  The file deliberately
// lacks cap/deadline identifiers, so the rule fires — and the annotation
// records why this one spot is exempt.  Lint input only; never compiled.

namespace corpus {

// aspen-lint: allow(serve-bounded-retry) -- one-shot probe: the caller sends at most a single follow-up by construction
inline double probe_backoff(double rto_ms) { return rto_ms * 2.0; }

}  // namespace corpus
