// Corpus fixture: suppressed getenv.  Never compiled.
#include <cstdlib>
const char* home_dir() {
  return std::getenv("HOME");  // aspen-lint: allow(getenv) -- fixture: sanctioned knob that never changes computed results
}
