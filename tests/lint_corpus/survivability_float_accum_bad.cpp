// Corpus fixture: true positive for float-accum (path-scoped: the linter
// only applies this rule to survivability sources).  Never compiled.
double mean_of_chunk(const double* values, int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    total += values[i];
  }
  return total / n;
}
