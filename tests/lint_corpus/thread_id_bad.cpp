// Corpus fixture: true positive for thread-id.  Never compiled.
#include <sstream>
#include <thread>
std::string worker_tag() {
  std::ostringstream os;
  os << std::this_thread::get_id();
  return os.str();
}
