// Corpus fixture: suppressed random-device.  Never compiled.
#include <random>
unsigned fresh_entropy() {
  std::random_device rd;  // aspen-lint: allow(random-device) -- fixture: demo tool that is explicitly not replayable
  return rd();
}
