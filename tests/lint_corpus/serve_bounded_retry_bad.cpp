// Corpus fixture: serve-bounded-retry true positive.  A retry wait that
// grows forever — no retry cap, no deadline check — is exactly the shape
// that turns a shedding server into a retry storm.  Lint input only; never
// compiled.

namespace corpus {

struct RetryTimer {
  double wait_ms = 1.0;
};

// BAD: doubles the wait on every call, and nothing in this file bounds how
// many times the caller may come back.
inline double next_backoff(RetryTimer& timer) {
  timer.wait_ms = timer.wait_ms * 2.0;
  return timer.wait_ms;
}

}  // namespace corpus
