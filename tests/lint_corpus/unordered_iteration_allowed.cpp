// Corpus fixture: suppressed unordered-iteration.  Never compiled.
#include <cstdint>
#include <unordered_map>
std::uint64_t table_sum(
    const std::unordered_map<std::uint32_t, std::uint64_t>& table) {
  std::uint64_t h = 0;
  // aspen-lint: allow(unordered-iteration) -- fixture: commutative sum, order provably irrelevant
  for (const auto& kv : table) {
    h += kv.second;
  }
  return h;
}
