// Corpus fixture: suppressed assert-side-effect.  Never compiled.
#include "src/util/contracts.h"
void drain_one(int& pending) {
  // aspen-lint: allow(assert-side-effect) -- fixture: regression test proving the elided build skips this mutation
  ASPEN_ASSERT(--pending >= 0, "queue underflow");
}
