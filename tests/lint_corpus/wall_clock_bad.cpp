// Corpus fixture: true positive for wall-clock.  Never compiled.
#include <chrono>
double stamp_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
