// Corpus fixture: suppressed unseeded-rand.  Never compiled.
#include <cstdlib>
int roll_d6() {
  return std::rand() % 6 + 1;  // aspen-lint: allow(unseeded-rand) -- fixture: legacy shim scheduled for deletion
}
