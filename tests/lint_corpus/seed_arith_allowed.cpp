// Corpus fixture: suppressed seed-arith.  Never compiled.
#include <cstdint>
std::uint64_t stream_for_link(std::uint64_t seed, std::uint64_t link) {
  // aspen-lint: allow(seed-arith) -- fixture: mixing pinned by recorded baselines
  return seed ^ (0x9E3779B97F4A7C15ULL + link);
}
