// Corpus fixture: true positive for unseeded-engine.  Never compiled.
#include <random>
unsigned draw() {
  std::mt19937_64 gen;
  return static_cast<unsigned>(gen());
}
