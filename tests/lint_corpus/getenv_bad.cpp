// Corpus fixture: true positive for getenv.  Never compiled.
#include <cstdlib>
const char* home_dir() {
  return std::getenv("HOME");
}
