// Corpus fixture: suppressed wall-clock.  Never compiled.
#include <chrono>
double stamp_ms() {
  return std::chrono::duration<double, std::milli>(
             // aspen-lint: allow(wall-clock) -- fixture: harness timing that never feeds a simulated result
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
