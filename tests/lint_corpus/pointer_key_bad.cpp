// Corpus fixture: true positive for pointer-key.  Never compiled.
#include <map>
struct Node {
  int id;
};
int first_id(const std::map<const Node*, int>& ranks) {
  return ranks.empty() ? -1 : ranks.begin()->second;
}
