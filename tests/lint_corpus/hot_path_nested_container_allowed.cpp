// Corpus fixture: suppressed hot-path-nested-container.  Never compiled.
#include <vector>

// aspen-lint: allow(hot-path-nested-container) -- fixture: cold-path result type built once per query, never probed per packet
std::vector<std::vector<int>> enumerate_paths(int limit);
