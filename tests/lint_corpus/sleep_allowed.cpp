// Corpus fixture: suppressed sleep.  Never compiled.
#include <chrono>
#include <thread>
void settle() {
  std::this_thread::sleep_for(std::chrono::milliseconds(10));  // aspen-lint: allow(sleep) -- fixture: integration-test backoff outside the simulator
}
