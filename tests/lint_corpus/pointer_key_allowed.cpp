// Corpus fixture: suppressed pointer-key.  Never compiled.
#include <map>
struct Node {
  int id;
};
// aspen-lint: allow(pointer-key) -- fixture: identity cache, never iterated or exported
int rank_of(const std::map<const Node*, int>& ranks, const Node* n) {
  const auto it = ranks.find(n);
  return it == ranks.end() ? -1 : it->second;
}
