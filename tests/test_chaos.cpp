// Tests for the unreliable control plane end-to-end: lossy ANP/LSP runs,
// switch-crash injection, compound timed faults, and chaos campaigns.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "src/aspen/generator.h"
#include "src/fault/chaos.h"
#include "src/proto/experiment.h"
#include "src/routing/updown.h"
#include "src/util/status.h"

namespace aspen {
namespace {

Topology make_tree(std::vector<int> ftv, int k = 4) {
  const int n = static_cast<int>(ftv.size()) + 1;
  return Topology::build(generate_tree(n, k, FaultToleranceVector(ftv)));
}

DelayModel lossy_reliable(double drop_rate, std::uint64_t seed) {
  DelayModel delays;
  delays.channel.drop_rate = drop_rate;
  delays.channel.duplicate_rate = 0.05;
  delays.channel.jitter_ms = 0.5;
  delays.channel.seed = seed;
  delays.channel.reliable = true;
  return delays;
}

// ---- Tentpole acceptance: lossy ANP converges to the lossless tables ----

TEST(LossyAnp, RetransmitMatchesLosslessTablesAtTwentyPercentDrop) {
  const Topology topo = make_tree({0, 1, 0});
  const LinkId victim = topo.links_at_level(2)[1];
  // Downward notices multiply the control traffic, so every seed actually
  // exercises the lossy channel.
  const AnpOptions anp{.notify_children = true, .adjacency_resync = false};

  std::uint64_t total_misbehavior = 0;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    AnpSimulation lossless(topo, DelayModel{}, anp);
    const RoutingState initial = lossless.tables();
    (void)lossless.simulate_link_failure(victim);

    AnpSimulation lossy(topo, lossy_reliable(0.2, seed), anp);
    const FailureReport report = lossy.simulate_link_failure(victim);

    total_misbehavior += report.channel_dropped + report.retransmits;
    EXPECT_TRUE(report.quiesced);
    EXPECT_EQ(report.gave_up, 0u);

    // Byte-identical patched tables despite 20% drop.
    EXPECT_EQ(switches_with_changed_tables(lossless.tables(), lossy.tables()),
              0u)
        << "seed " << seed << ": lossy ANP diverged from lossless reaction";

    // And full recovery restores the pre-failure tables exactly.
    (void)lossy.simulate_link_recovery(victim);
    EXPECT_EQ(switches_with_changed_tables(initial, lossy.tables()), 0u)
        << "seed " << seed << ": recovery under loss did not restore";
  }
  // The channel must actually have misbehaved for the above to mean much.
  EXPECT_GT(total_misbehavior, 0u);
}

TEST(LossyAnp, UnreliableChannelCountsDropsButStillQuiesces) {
  const Topology topo = make_tree({0, 1, 0});
  DelayModel delays;
  delays.channel.drop_rate = 0.5;
  delays.channel.seed = 7;
  delays.channel.reliable = false;  // no retransmit: drops are final
  AnpSimulation anp(topo, delays,
                    AnpOptions{.notify_children = true,
                               .adjacency_resync = false});
  const FailureReport report =
      anp.simulate_link_failure(topo.links_at_level(2)[0]);
  EXPECT_TRUE(report.quiesced);
  EXPECT_GT(report.channel_dropped, 0u);
  EXPECT_EQ(report.retransmits, 0u);
}

TEST(LossyLsp, ReliableFloodLeavesNoStaleSwitches) {
  const Topology topo = make_tree({0, 1, 0});
  const LinkId victim = topo.links_at_level(3)[2];

  LspSimulation lossless(topo, DelayModel{});
  (void)lossless.simulate_link_failure(victim);

  LspSimulation lossy(topo, lossy_reliable(0.2, 21));
  const FailureReport report = lossy.simulate_link_failure(victim);
  EXPECT_TRUE(report.quiesced);
  EXPECT_EQ(report.stale_switches, 0u);
  EXPECT_GT(report.retransmits + report.channel_dropped, 0u);
  EXPECT_EQ(switches_with_changed_tables(lossless.tables(), lossy.tables()),
            0u);
}

TEST(LossyLsp, UnreliableHighLossMayStrandSwitchesButIsCounted) {
  const Topology topo = make_tree({0, 1, 0});
  DelayModel delays;
  delays.channel.drop_rate = 0.6;
  delays.channel.seed = 13;
  delays.channel.reliable = false;
  LspSimulation lsp(topo, delays);
  const FailureReport report =
      lsp.simulate_link_failure(topo.links_at_level(2)[0]);
  EXPECT_TRUE(report.quiesced);
  EXPECT_GT(report.channel_dropped, 0u);
  // Whatever switches missed the flood are accounted, not silently wrong.
  EXPECT_GE(report.stale_switches, 0u);
}

// ---- Switch crashes ------------------------------------------------------

class SwitchCrashTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(SwitchCrashTest, CrashFailsAllIncidentLinksAtomically) {
  const Topology topo = make_tree({0, 1, 0});
  auto proto = make_protocol(GetParam(), topo);
  const RoutingState initial = proto->tables();

  const SwitchId victim = topo.switch_at(2, 1);
  ASSERT_TRUE(proto->is_alive(victim));
  (void)proto->simulate_switch_failure(victim);

  EXPECT_FALSE(proto->is_alive(victim));
  for (const Topology::Neighbor& nb : topo.up_neighbors(victim)) {
    EXPECT_FALSE(proto->overlay().is_up(nb.link));
  }
  for (const Topology::Neighbor& nb : topo.down_neighbors(victim)) {
    EXPECT_FALSE(proto->overlay().is_up(nb.link));
  }

  (void)proto->simulate_switch_recovery(victim);
  EXPECT_TRUE(proto->is_alive(victim));
  for (const Topology::Neighbor& nb : topo.up_neighbors(victim)) {
    EXPECT_TRUE(proto->overlay().is_up(nb.link));
  }
  EXPECT_EQ(switches_with_changed_tables(initial, proto->tables()), 0u);
}

TEST_P(SwitchCrashTest, CrashWhileReactingDiscardsQueuedWorkThenHeals) {
  const Topology topo = make_tree({0, 1, 0});
  auto proto = make_protocol(GetParam(), topo);
  const RoutingState initial = proto->tables();

  // Fail a link at t=0; 5 ms into the reaction (mid-flight for both
  // protocols' processing delays) crash the link's upper endpoint, whose
  // queued protocol work is discarded.
  const LinkId link = topo.links_at_level(2)[0];
  const SwitchId victim = topo.switch_of(topo.link(link).upper);
  const std::array<TimedFault, 2> schedule{
      TimedFault::link_fail(link),
      TimedFault::switch_fail(victim, 5.0),
  };
  const FailureReport report = proto->simulate_timed_events(schedule);
  EXPECT_TRUE(report.quiesced);
  EXPECT_FALSE(proto->is_alive(victim));

  // Heal in non-LIFO order: revive the switch, then the original link.
  (void)proto->simulate_switch_recovery(victim);
  (void)proto->simulate_link_recovery(link);
  EXPECT_EQ(switches_with_changed_tables(initial, proto->tables()), 0u);
}

TEST_P(SwitchCrashTest, LinkRecoveryOwedToCrashedSwitchWaitsForRevival) {
  const Topology topo = make_tree({0, 1, 0});
  auto proto = make_protocol(GetParam(), topo);
  const RoutingState initial = proto->tables();

  const SwitchId victim = topo.switch_at(3, 0);
  ASSERT_FALSE(topo.down_neighbors(victim).empty());
  const LinkId owed = topo.down_neighbors(victim)[0].link;

  // Fail the link first, then crash one endpoint, then "recover" the link
  // while the endpoint is down: custody passes to the crashed switch and the
  // link must stay down until the switch revives.
  (void)proto->simulate_link_failure(owed);
  (void)proto->simulate_switch_failure(victim);
  const TimedFault recover = TimedFault::link_recover(owed);
  (void)proto->simulate_timed_events({&recover, 1});
  EXPECT_FALSE(proto->overlay().is_up(owed));

  (void)proto->simulate_switch_recovery(victim);
  EXPECT_TRUE(proto->overlay().is_up(owed));
  EXPECT_EQ(switches_with_changed_tables(initial, proto->tables()), 0u);
}

INSTANTIATE_TEST_SUITE_P(Protocols, SwitchCrashTest,
                         ::testing::Values(ProtocolKind::kLsp,
                                           ProtocolKind::kAnp),
                         [](const auto& param_info) {
                           return std::string(to_cstring(param_info.param));
                         });

// ---- Chaos campaigns (tentpole acceptance: 50+ mixed events) ------------

class ChaosCampaignTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ChaosCampaignTest, PerfectChannelCampaignRestoresTables) {
  const Topology topo = make_tree({0, 1, 0});
  ChaosOptions options;
  options.seed = 4;
  options.num_events = 60;
  const ChaosOutcome outcome = run_chaos_campaign(GetParam(), topo, options);

  EXPECT_GE(outcome.link_failures + outcome.switch_crashes +
                outcome.link_recoveries + outcome.switch_recoveries,
            60u);
  EXPECT_GT(outcome.switch_crashes, 0u);  // the mix actually mixed
  EXPECT_GT(outcome.link_failures, 0u);
  EXPECT_GT(outcome.checks, 0u);
  EXPECT_TRUE(outcome.all_quiesced);
  EXPECT_EQ(outcome.ground_truth_violations, 0u);
  EXPECT_TRUE(outcome.tables_restored);
}

TEST_P(ChaosCampaignTest, LossyReliableCampaignRestoresTables) {
  const Topology topo = make_tree({0, 1, 0});
  ChaosOptions options;
  options.seed = 9;
  options.num_events = 60;
  options.delays = lossy_reliable(0.1, 17);
  const ChaosOutcome outcome = run_chaos_campaign(GetParam(), topo, options);

  EXPECT_GT(outcome.messages, 0u);
  EXPECT_GT(outcome.channel_dropped + outcome.retransmits, 0u);
  EXPECT_TRUE(outcome.all_quiesced);
  EXPECT_EQ(outcome.ground_truth_violations, 0u);
  EXPECT_TRUE(outcome.tables_restored);
}

TEST_P(ChaosCampaignTest, DegradedCampaignKeepsInvariants) {
  // Gray and flapping links join the schedule: they add probabilistic
  // data-plane pain (degraded_drops) and can eat control messages, but
  // the physics invariant — walked health-free — and the restoration
  // invariant must survive.  The channel is reliable so health-eaten
  // notifications are retransmitted.
  const Topology topo = make_tree({0, 1, 0});
  ChaosOptions options;
  options.seed = 77;
  options.num_events = 50;
  options.p_degrade = 0.35;
  options.delays.channel.reliable = true;
  const ChaosOutcome outcome = run_chaos_campaign(GetParam(), topo, options);

  EXPECT_EQ(outcome.seed, 77u);
  EXPECT_GT(outcome.gray_injected + outcome.flaps_injected, 0u);
  // Every degradation is eventually healed (in-campaign or at unwind) or
  // subsumed by a real failure of the same link.
  EXPECT_LE(outcome.degradations_cleared,
            outcome.gray_injected + outcome.flaps_injected);
  EXPECT_GT(outcome.degradations_cleared, 0u);
  // Degraded links hurt the data plane without breaking the invariant.
  EXPECT_EQ(outcome.ground_truth_violations, 0u);
  EXPECT_TRUE(outcome.all_quiesced);
  EXPECT_TRUE(outcome.tables_restored);
  // Each injected gray got a side-channel detector watch.
  EXPECT_EQ(outcome.detection_ms.count() + outcome.undetected_grays,
            outcome.gray_injected);
  if (outcome.detection_ms.count() > 0) {
    EXPECT_GT(outcome.detection_ms.mean(), 0.0);
  }
}

TEST(ChaosCampaign, DegradeScheduleDeterministicGivenSeed) {
  const Topology topo = make_tree({0, 1, 0});
  ChaosOptions options;
  options.seed = 5;
  options.num_events = 30;
  options.p_degrade = 0.4;
  options.delays.channel.reliable = true;
  const ChaosOutcome a = run_chaos_campaign(ProtocolKind::kAnp, topo, options);
  const ChaosOutcome b = run_chaos_campaign(ProtocolKind::kAnp, topo, options);
  EXPECT_EQ(a.gray_injected, b.gray_injected);
  EXPECT_EQ(a.flaps_injected, b.flaps_injected);
  EXPECT_EQ(a.degradations_cleared, b.degradations_cleared);
  EXPECT_EQ(a.degraded_drops, b.degraded_drops);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.health_dropped, b.health_dropped);
}

TEST(ChaosCampaign, ZeroDegradeProbabilityMatchesLegacySchedule) {
  // p_degrade = 0 must leave the RNG stream untouched: the campaign
  // replays exactly the schedule it produced before link health existed.
  const Topology topo = make_tree({0, 1, 0});
  ChaosOptions legacy;
  legacy.seed = 13;
  legacy.num_events = 40;
  const ChaosOutcome outcome =
      run_chaos_campaign(ProtocolKind::kAnp, topo, legacy);
  EXPECT_EQ(outcome.gray_injected, 0u);
  EXPECT_EQ(outcome.flaps_injected, 0u);
  EXPECT_EQ(outcome.degraded_drops, 0u);
  EXPECT_EQ(outcome.health_dropped, 0u);
  EXPECT_TRUE(outcome.tables_restored);
}

INSTANTIATE_TEST_SUITE_P(Protocols, ChaosCampaignTest,
                         ::testing::Values(ProtocolKind::kLsp,
                                           ProtocolKind::kAnp),
                         [](const auto& param_info) {
                           return std::string(to_cstring(param_info.param));
                         });

TEST(ChaosCampaign, DeterministicGivenSeed) {
  const Topology topo = make_tree({0, 1, 0});
  ChaosOptions options;
  options.seed = 31;
  options.num_events = 25;
  const ChaosOutcome a = run_chaos_campaign(ProtocolKind::kAnp, topo, options);
  const ChaosOutcome b = run_chaos_campaign(ProtocolKind::kAnp, topo, options);
  EXPECT_EQ(a.link_failures, b.link_failures);
  EXPECT_EQ(a.switch_crashes, b.switch_crashes);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.checked_flows, b.checked_flows);
  EXPECT_EQ(a.protocol_shortfall, b.protocol_shortfall);
}

TEST(TimedFaults, RequireSortedSchedules) {
  const Topology topo = make_tree({0, 0});
  auto proto = make_protocol(ProtocolKind::kAnp, topo);
  const std::array<TimedFault, 2> unsorted{
      TimedFault::link_fail(topo.links_at_level(2)[0], 5.0),
      TimedFault::link_fail(topo.links_at_level(2)[1], 1.0),
  };
  EXPECT_THROW((void)proto->simulate_timed_events(unsorted),
               PreconditionError);
}

}  // namespace
}  // namespace aspen
