// Stress properties: long random interleavings of failures and recoveries,
// checked against the protocols' core invariants after every operation.
#include <gtest/gtest.h>

#include <set>

#include "src/aspen/fixed_hosts.h"
#include "src/aspen/generator.h"
#include "src/proto/anp.h"
#include "src/proto/lsp.h"
#include "src/routing/reachability.h"
#include "src/routing/updown.h"
#include "src/util/rng.h"

namespace aspen {
namespace {

// A random walk over link states: each step fails a random live link or
// recovers a random dead one, keeping at most `max_down` links down.
class LinkChaos {
 public:
  LinkChaos(const Topology& topo, std::uint64_t seed, std::size_t max_down)
      : topo_(&topo), rng_(seed), max_down_(max_down) {}

  // Returns (link, fail?) for the next step.
  std::pair<LinkId, bool> next() {
    const bool must_recover = down_.size() >= max_down_;
    const bool recover = !down_.empty() && (must_recover || rng_.chance(0.4));
    if (recover) {
      auto it = down_.begin();
      std::advance(it, static_cast<long>(rng_.index(down_.size())));
      const LinkId link = *it;
      down_.erase(it);
      return {link, false};
    }
    // Fail a random live inter-switch link.
    while (true) {
      const auto id = static_cast<std::uint32_t>(
          rng_.index(topo_->num_links()));
      const LinkId link{id};
      if (topo_->link(link).upper_level < 2) continue;  // skip host links
      if (down_.contains(link)) continue;
      down_.insert(link);
      return {link, true};
    }
  }

  [[nodiscard]] const std::set<LinkId>& down() const { return down_; }

 private:
  const Topology* topo_;
  Rng rng_;
  std::size_t max_down_;
  std::set<LinkId> down_;
};

TEST(ProtocolStress, LspTablesAlwaysMatchGlobalRecomputation) {
  const Topology topo =
      Topology::build(generate_tree(4, 4, FaultToleranceVector{1, 0, 0}));
  LspSimulation lsp(topo);
  LinkChaos chaos(topo, 99, 4);
  for (int step = 0; step < 60; ++step) {
    const auto [link, fail] = chaos.next();
    if (fail) {
      (void)lsp.simulate_link_failure(link);
    } else {
      (void)lsp.simulate_link_recovery(link);
    }
    const RoutingState expected = compute_updown_routes(topo, lsp.overlay());
    ASSERT_EQ(switches_with_changed_tables(lsp.tables(), expected), 0u)
        << "step " << step;
  }
}

TEST(ProtocolStress, AnpFullRecoveryRestoresInitialTables) {
  for (const bool extended : {false, true}) {
    const Topology topo =
        Topology::build(generate_tree(4, 4, FaultToleranceVector{0, 1, 0}));
    AnpOptions options;
    options.notify_children = extended;
    AnpSimulation anp(topo, DelayModel{}, options);
    const RoutingState initial = anp.tables();

    LinkChaos chaos(topo, 7, 3);
    std::set<LinkId> down;
    for (int step = 0; step < 80; ++step) {
      const auto [link, fail] = chaos.next();
      if (fail) {
        (void)anp.simulate_link_failure(link);
        down.insert(link);
      } else {
        (void)anp.simulate_link_recovery(link);
        down.erase(link);
      }
    }
    for (const LinkId link : down) {
      (void)anp.simulate_link_recovery(link);
    }
    EXPECT_EQ(switches_with_changed_tables(initial, anp.tables()), 0u)
        << (extended ? "extended" : "faithful");
  }
}

TEST(ProtocolStress, ExtendedAnpDeliveryNeverLoops) {
  // Whatever the damage, packets routed by ANP-patched tables either
  // deliver or die cleanly — they never cycle.
  const Topology topo =
      Topology::build(generate_tree(4, 4, FaultToleranceVector{1, 0, 0}));
  AnpOptions extended;
  extended.notify_children = true;
  AnpSimulation anp(topo, DelayModel{}, extended);
  LinkChaos chaos(topo, 1234, 5);
  for (int step = 0; step < 40; ++step) {
    const auto [link, fail] = chaos.next();
    if (fail) {
      (void)anp.simulate_link_failure(link);
    } else {
      (void)anp.simulate_link_recovery(link);
    }
    const TableRouter router(anp.tables());
    const ReachabilityStats stats =
        measure_all_pairs(topo, router, anp.overlay());
    ASSERT_EQ(stats.looped, 0u) << "step " << step;
  }
}

TEST(ProtocolStress, LspTimersOnlyDelayNeverChangeOutcomes) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  LspSimulation fast(topo);
  LspSimulation paced(topo, DelayModel::classic_ospf_timers());
  LinkChaos chaos_a(topo, 5, 3);
  LinkChaos chaos_b(topo, 5, 3);
  for (int step = 0; step < 30; ++step) {
    const auto [link_a, fail_a] = chaos_a.next();
    const auto [link_b, fail_b] = chaos_b.next();
    ASSERT_EQ(link_a, link_b);
    ASSERT_EQ(fail_a, fail_b);
    const FailureReport ra = fail_a ? fast.simulate_link_failure(link_a)
                                    : fast.simulate_link_recovery(link_a);
    const FailureReport rb = fail_b ? paced.simulate_link_failure(link_b)
                                    : paced.simulate_link_recovery(link_b);
    // Same reacting set and final tables; pacing only stretches time.
    EXPECT_EQ(ra.switches_reacted, rb.switches_reacted);
    if (ra.switches_reacted > 0) {
      EXPECT_GT(rb.convergence_time_ms, ra.convergence_time_ms);
    }
    EXPECT_EQ(
        switches_with_changed_tables(fast.tables(), paced.tables()), 0u);
  }
}

TEST(ProtocolStress, ClassicTimersReachTensOfSeconds) {
  // The §1 claim, as a regression test.
  const Topology topo = Topology::build(fat_tree(3, 6));
  DelayModel conservative = DelayModel::classic_ospf_timers();
  conservative.spf_delay = 10'000.0;
  LspSimulation lsp(topo, conservative);
  const FailureReport report = lsp.simulate_link_failure(
      topo.down_neighbors(topo.switch_at(3, 0))[0].link);
  EXPECT_GT(report.convergence_time_ms, 10'000.0);
}

}  // namespace
}  // namespace aspen
