// Tests for the convergence-cost model behind Figure 7 (§8.2).
#include <gtest/gtest.h>

#include "src/analysis/cost.h"
#include "src/aspen/generator.h"
#include "src/util/status.h"

namespace aspen {
namespace {

TEST(Cost, FatTreeCost) {
  const ConvergenceCost cost = fat_tree_cost(3, 4);
  EXPECT_DOUBLE_EQ(cost.average_hops, 2.5);  // (3 + 2)/2
  EXPECT_EQ(cost.links, 48u);                // 3·S·k/2 = 3·8·2
  EXPECT_DOUBLE_EQ(cost.cost, 120.0);
}

TEST(Cost, AspenFixedHostCost) {
  const ConvergenceCost cost = aspen_fixed_host_cost(3, 4, 1);
  // FTV <1,0,0>: distances (2,1,0) → avg 1; links = 4·S·k/2 = 64.
  EXPECT_DOUBLE_EQ(cost.average_hops, 1.0);
  EXPECT_EQ(cost.links, 64u);
  EXPECT_DOUBLE_EQ(cost.cost, 64.0);
}

TEST(Cost, RatioMatchesHandComputation) {
  // n=3, x=1: fat cost ∝ 2.5·3, aspen ∝ 1·4 → ratio 1.875.
  EXPECT_NEAR(fat_vs_aspen_cost_ratio(3, 1), 1.875, 1e-12);
  // Consistency with the explicit k-specific computation.
  for (const int k : {4, 8, 16}) {
    const double explicit_ratio =
        fat_tree_cost(3, k).cost / aspen_fixed_host_cost(3, k, 1).cost;
    EXPECT_NEAR(explicit_ratio, fat_vs_aspen_cost_ratio(3, 1), 1e-12)
        << "k=" << k;
  }
}

TEST(Cost, RatioIsKIndependent) {
  for (int n = 3; n <= 5; ++n) {
    for (int x = 1; x <= 3; ++x) {
      const double reference = fat_vs_aspen_cost_ratio(n, x);
      for (const int k : {4, 6, 8, 16}) {
        EXPECT_NEAR(fat_tree_cost(n, k).cost /
                        aspen_fixed_host_cost(n, k, x).cost,
                    reference, 1e-9)
            << "n=" << n << " x=" << x << " k=" << k;
      }
    }
  }
}

TEST(Cost, Figure7ClaimAspenAlwaysWinsForSmallX) {
  // "when an n-level fat tree is extended with up to x = n−2 new levels
  // that have non-zero fault tolerance, the resulting (n+x)-level Aspen
  // tree always has a lower convergence cost than the corresponding fat
  // tree" — ratio > 1 in our fat:aspen orientation.
  for (int n = 3; n <= 7; ++n) {
    for (int x = 1; x <= n - 2; ++x) {
      EXPECT_GT(fat_vs_aspen_cost_ratio(n, x), 1.0)
          << "n=" << n << " x=" << x;
    }
  }
}

TEST(Cost, Figure7FullGridIsFinite) {
  // The plotted grid: n = 3..7, x = 1..4.
  for (int n = 3; n <= 7; ++n) {
    for (int x = 1; x <= 4; ++x) {
      const double ratio = fat_vs_aspen_cost_ratio(n, x);
      EXPECT_GT(ratio, 0.0);
      EXPECT_LT(ratio, 3.0);  // the figure's y-range
    }
  }
}

TEST(Cost, TopPlacementBeatsBottomPlacement) {
  // §8.1's guidance shows up in the cost model: clustering redundancy at
  // the top converges strictly cheaper than pushing it to the bottom.
  for (int n = 3; n <= 6; ++n) {
    const double top = fat_vs_aspen_cost_ratio(n, 1, RedundancyPlacement::kTop);
    const double bottom =
        fat_vs_aspen_cost_ratio(n, 1, RedundancyPlacement::kBottom);
    EXPECT_GT(top, bottom) << "n=" << n;
  }
}

TEST(Cost, BottomPlacementCanLose) {
  // With redundancy buried at the bottom, failures above it still trigger
  // global re-convergence over *more* links: the Aspen tree costs more
  // than the fat tree it came from (ratio < 1).
  EXPECT_LT(fat_vs_aspen_cost_ratio(3, 1, RedundancyPlacement::kBottom), 1.0);
}

TEST(Cost, MoreRedundantLevelsReduceAspenCost) {
  // Adding a second fault-tolerant level (top placement) never increases
  // the Aspen tree's average hop count.
  for (int n = 3; n <= 6; ++n) {
    const ConvergenceCost one = aspen_fixed_host_cost(n, 8, 1);
    const ConvergenceCost two = aspen_fixed_host_cost(n, 8, 2);
    EXPECT_LE(two.average_hops, one.average_hops) << "n=" << n;
    EXPECT_GT(two.links, one.links);
  }
}

TEST(Cost, GenericConvergenceCost) {
  const ConvergenceCost cost =
      convergence_cost(generate_tree(4, 6, FaultToleranceVector{2, 0, 0}));
  EXPECT_DOUBLE_EQ(cost.average_hops, 1.0);
  EXPECT_EQ(cost.links, 4u * 18u * 3u);
  EXPECT_DOUBLE_EQ(cost.cost, 216.0);
}

TEST(Cost, PreconditionsThrow) {
  EXPECT_THROW((void)fat_vs_aspen_cost_ratio(1, 1), PreconditionError);
  EXPECT_THROW((void)fat_vs_aspen_cost_ratio(3, 0), PreconditionError);
}

}  // namespace
}  // namespace aspen
