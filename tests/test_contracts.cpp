// Tests for the contracts & invariant-audit layer: macro/policy semantics,
// and one corruption test per auditor code proving each oracle fires.
//
// The protocol/simulator APIs cannot produce most of these states — that is
// the point of the invariants — so the *AuditPeer corruption hooks plant
// them directly (see src/proto/audit.h, src/sim/audit.h).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/aspen/generator.h"
#include "src/proto/audit.h"
#include "src/routing/audit.h"
#include "src/routing/updown.h"
#include "src/sim/audit.h"
#include "src/topo/audit.h"
#include "src/topo/striping.h"
#include "src/util/contracts.h"

namespace aspen {
namespace {

using contracts::AuditLevel;
using contracts::ScopedPolicy;
using contracts::ViolationPolicy;

Topology make_tree(std::vector<int> ftv, int k = 4, StripingConfig cfg = {}) {
  const int n = static_cast<int>(ftv.size()) + 1;
  return Topology::build(generate_tree(n, k, FaultToleranceVector(ftv)), cfg);
}

// ---- Macro & policy semantics -------------------------------------------

TEST(ContractMacros, PassingAssertIsSilent) {
  const ScopedPolicy policy(ViolationPolicy::kThrow);
  ASPEN_ASSERT(2 + 2 == 4, "arithmetic still works");
  ASPEN_INVARIANT(2 + 2 == 4, "arithmetic still works");
}

#if ASPEN_AUDIT_LEVEL >= 1
TEST(ContractMacros, FailingAssertThrowsUnderThrowPolicy) {
  const ScopedPolicy policy(ViolationPolicy::kThrow);
  const auto violate = [] { ASPEN_ASSERT(2 + 2 == 5, "deliberate"); };
  EXPECT_THROW(violate(), ContractViolation);
}

TEST(ContractMacros, CountAndLogTalliesInsteadOfThrowing) {
  const ScopedPolicy policy(ViolationPolicy::kCountAndLog);
  contracts::reset_violations();
  ASPEN_ASSERT(false, "first deliberate violation");
  ASPEN_ASSERT(false, "second deliberate violation");
  EXPECT_EQ(contracts::violation_count(), 2u);
  const std::vector<std::string> messages = contracts::recent_violations();
  ASSERT_FALSE(messages.empty());
  EXPECT_NE(messages[0].find("deliberate"), std::string::npos);
  contracts::reset_violations();
  EXPECT_EQ(contracts::violation_count(), 0u);
  EXPECT_TRUE(contracts::recent_violations().empty());
}
#endif  // ASPEN_AUDIT_LEVEL >= 1

TEST(ContractMacros, InvariantEvaluatesOnlyAtParanoidBuildLevel) {
  const ScopedPolicy policy(ViolationPolicy::kCountAndLog);
  contracts::reset_violations();
  bool evaluated = false;
  const auto probe = [&evaluated] {
    evaluated = true;
    return true;
  };
  ASPEN_INVARIANT(probe(), "probe");
  EXPECT_EQ(evaluated, ASPEN_AUDIT_LEVEL >= 2);
}

TEST(ContractMacros, UnreachableAlwaysFires) {
  // Unlike the gated macros, ASPEN_UNREACHABLE survives every audit level.
  const ScopedPolicy policy(ViolationPolicy::kThrow);
  const auto fall_off = [] { ASPEN_UNREACHABLE("fell off the switch"); };
  EXPECT_THROW(fall_off(), ContractViolation);
}

TEST(ContractPolicy, ScopedPolicyRestoresOnExit) {
  const ViolationPolicy before = contracts::policy();
  {
    const ScopedPolicy policy(ViolationPolicy::kCountAndLog);
    EXPECT_EQ(contracts::policy(), ViolationPolicy::kCountAndLog);
  }
  EXPECT_EQ(contracts::policy(), before);
}

TEST(ContractPolicy, ScopedPolicyCanRaiseAuditLevel) {
  const AuditLevel before = contracts::audit_level();
  {
    const ScopedPolicy policy(ViolationPolicy::kThrow, AuditLevel::kParanoid);
    EXPECT_EQ(contracts::audit_level(), AuditLevel::kParanoid);
  }
  // The env var may pin the ambient level; it can only have gone back down
  // to whatever it was before the scope.
  EXPECT_EQ(contracts::audit_level(), before);
}

TEST(ContractPolicy, ParseAuditLevelRoundTrips) {
  EXPECT_EQ(contracts::parse_audit_level("off"), AuditLevel::kOff);
  EXPECT_EQ(contracts::parse_audit_level("0"), AuditLevel::kOff);
  EXPECT_EQ(contracts::parse_audit_level("basic"), AuditLevel::kBasic);
  EXPECT_EQ(contracts::parse_audit_level("1"), AuditLevel::kBasic);
  EXPECT_EQ(contracts::parse_audit_level("paranoid"), AuditLevel::kParanoid);
  EXPECT_EQ(contracts::parse_audit_level("2"), AuditLevel::kParanoid);
  EXPECT_THROW((void)contracts::parse_audit_level("bogus"),
               PreconditionError);
  EXPECT_STREQ(contracts::to_cstring(AuditLevel::kOff), "off");
  EXPECT_STREQ(contracts::to_cstring(AuditLevel::kBasic), "basic");
  EXPECT_STREQ(contracts::to_cstring(AuditLevel::kParanoid), "paranoid");
}

TEST(ContractPolicy, EffectiveAuditLevelTakesTheMax) {
  EXPECT_EQ(contracts::effective_audit_level(AuditLevel::kParanoid),
            AuditLevel::kParanoid);
  EXPECT_EQ(contracts::effective_audit_level(contracts::audit_level()),
            contracts::audit_level());
}

TEST(ContractPolicy, EnforceAppliesPolicyPerFinding) {
  AuditReport report;
  {
    const ScopedPolicy policy(ViolationPolicy::kThrow);
    contracts::enforce(report, "clean");  // empty report: no-op
    report.add(AuditCode::kTableShape, "deliberately planted");
    EXPECT_THROW(contracts::enforce(report, "dirty"), ContractViolation);
  }
  {
    const ScopedPolicy policy(ViolationPolicy::kCountAndLog);
    contracts::reset_violations();
    report.add(AuditCode::kRoutingLoop, "second planted finding");
    contracts::enforce(report, "dirty");
    EXPECT_EQ(contracts::violation_count(), 2u);
    contracts::reset_violations();
  }
}

TEST(ContractPolicy, AuditReportHelpers) {
  AuditReport report;
  EXPECT_TRUE(report.ok());
  report.add(AuditCode::kTableShape, "one");
  report.add(AuditCode::kTableShape, "two");
  report.add(AuditCode::kRoutingLoop, "three");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(AuditCode::kTableShape));
  EXPECT_FALSE(report.has(AuditCode::kDeadNextHop));
  EXPECT_EQ(report.count(AuditCode::kTableShape), 2u);
  EXPECT_NE(report.to_string().find("table-shape: one"), std::string::npos);
}

// ---- topo::audit_params / audit_tree ------------------------------------

TEST(TopoAudit, CleanTreePasses) {
  const Topology topo = make_tree({1, 0});
  const AuditReport report = topo::audit_tree(topo);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(TopoAudit, Eq1ConservationFires) {
  TreeParams params = generate_tree(3, 4, FaultToleranceVector({1, 0}));
  params.p[2] += 1;  // p_2·m_2 != S
  const AuditReport report = topo::audit_params(params);
  EXPECT_TRUE(report.has(AuditCode::kEq1Conservation)) << report.to_string();
}

TEST(TopoAudit, Eq2PortBudgetFires) {
  TreeParams params = generate_tree(3, 4, FaultToleranceVector({1, 0}));
  params.r[2] += 1;  // r_2·c_2 != k/2
  const AuditReport report = topo::audit_params(params);
  EXPECT_TRUE(report.has(AuditCode::kEq2PortBudget)) << report.to_string();
}

TEST(TopoAudit, Eq3PodNestingFires) {
  TreeParams params = generate_tree(3, 4, FaultToleranceVector({1, 0}));
  // Keep Eq. 2 intact (r_3·c_3 = k) while breaking p_3·r_3 = p_2.
  params.r[3] *= 2;
  params.c[3] /= 2;
  const AuditReport report = topo::audit_params(params);
  EXPECT_FALSE(report.has(AuditCode::kEq2PortBudget)) << report.to_string();
  EXPECT_TRUE(report.has(AuditCode::kEq3PodNesting)) << report.to_string();
}

TEST(TopoAudit, DccConsistencyFires) {
  TreeParams params = generate_tree(3, 4, FaultToleranceVector({1, 0}));
  params.c[2] *= 2;  // hosts·DCC·2^(n-1) != k^n (Eq. 6)
  const AuditReport report = topo::audit_params(params);
  EXPECT_TRUE(report.has(AuditCode::kDccConsistency)) << report.to_string();
}

TEST(TopoAudit, ParallelHeavyStripingFlagged) {
  StripingConfig cfg;
  cfg.kind = StripingKind::kParallelHeavy;
  const Topology topo = make_tree({1, 0}, 4, cfg);
  const AuditReport report = topo::audit_tree(topo);
  EXPECT_TRUE(report.has(AuditCode::kAnpStriping)) << report.to_string();
}

// ---- routing::audit_tables ----------------------------------------------

struct RoutingFixture {
  Topology topo = make_tree({1, 0});
  LinkStateOverlay overlay{topo};
  RoutingState state =
      compute_updown_routes(topo, overlay, DestGranularity::kEdge);

  /// An edge switch, a far destination index, and the uplink hop the edge
  /// switch's entry for that destination starts with.
  SwitchId edge = topo.switch_at(1, 0);
  std::uint64_t far_dest = topo.params().S - 1;

  [[nodiscard]] RoutingTables::Entry& entry_at(SwitchId s,
                                               std::uint64_t dest) {
    return state.tables.entry_at(s.value(), dest);
  }
};

TEST(RoutingAudit, CleanTablesPass) {
  RoutingFixture fx;
  const AuditReport report =
      routing::audit_tables(fx.topo, fx.state, fx.overlay);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(RoutingAudit, TableShapeFires) {
  RoutingFixture fx;
  fx.state.tables.pop_back();
  EXPECT_TRUE(routing::audit_tables(fx.topo, fx.state, fx.overlay)
                  .has(AuditCode::kTableShape));

  RoutingFixture fx2;
  fx2.state.hosts_per_edge += 1;
  EXPECT_TRUE(routing::audit_tables(fx2.topo, fx2.state, fx2.overlay)
                  .has(AuditCode::kTableShape));
}

TEST(RoutingAudit, CostInconsistencyFires) {
  RoutingFixture fx;
  RoutingTables::Entry& entry = fx.entry_at(fx.edge, fx.far_dest);
  ASSERT_NE(entry.hop_count, 0);
  entry.cost = RoutingTables::kUnreachable;  // hops left behind
  EXPECT_TRUE(routing::audit_tables(fx.topo, fx.state, fx.overlay)
                  .has(AuditCode::kCostInconsistency));
}

TEST(RoutingAudit, NextHopLinkFires) {
  RoutingFixture fx;
  RoutingTables::Entry& entry = fx.entry_at(fx.edge, fx.far_dest);
  ASSERT_NE(entry.hop_count, 0);
  // Swap in a link that is not even incident to the edge switch.
  const NodeId self = fx.topo.node_of(fx.edge);
  for (std::uint32_t l = 0; l < fx.topo.num_links(); ++l) {
    const Topology::LinkRec rec = fx.topo.link(LinkId{l});
    if (rec.upper != self && rec.lower != self) {
      fx.state.tables.hops_mut(entry)[0].link = LinkId{l};
      break;
    }
  }
  EXPECT_TRUE(routing::audit_tables(fx.topo, fx.state, fx.overlay)
                  .has(AuditCode::kNextHopLink));
}

TEST(RoutingAudit, DeadNextHopFiresOnlyWhenChecked) {
  RoutingFixture fx;
  const RoutingTables::Entry& entry = fx.entry_at(fx.edge, fx.far_dest);
  ASSERT_NE(entry.hop_count, 0);
  fx.overlay.fail(fx.state.tables.hops(entry)[0].link);

  routing::TableAuditOptions options;
  options.check_dead_next_hops = true;
  options.check_walks = false;
  EXPECT_TRUE(routing::audit_tables(fx.topo, fx.state, fx.overlay, options)
                  .has(AuditCode::kDeadNextHop));
  // The gate chaos campaigns use for deliberately-stale tables.
  options.check_dead_next_hops = false;
  EXPECT_FALSE(routing::audit_tables(fx.topo, fx.state, fx.overlay, options)
                   .has(AuditCode::kDeadNextHop));
}

TEST(RoutingAudit, UpAfterDownFires) {
  RoutingFixture fx;
  // Point the edge switch's parent back down at the edge switch, so a walk
  // toward far_dest descends and is then forced to climb again.
  const RoutingTables::Entry& up = fx.entry_at(fx.edge, fx.far_dest);
  ASSERT_NE(up.hop_count, 0);
  const Topology::Neighbor uplink = fx.state.tables.hops(up)[0];
  const SwitchId parent = fx.topo.switch_of(uplink.node);
  RoutingTables::Entry& down = fx.entry_at(parent, fx.far_dest);
  const Topology::Neighbor back{fx.topo.node_of(fx.edge), uplink.link};
  fx.state.tables.assign_hops(down, {&back, 1});
  down.cost = 1;
  EXPECT_TRUE(routing::audit_tables(fx.topo, fx.state, fx.overlay)
                  .has(AuditCode::kUpAfterDown));
}

TEST(RoutingAudit, ForwardingToWrongHostFires) {
  RoutingFixture fx;
  // A next hop that delivers to some unrelated host is a routing-loop
  // finding: the walk can never reach the destination edge switch.
  const NodeId wrong_host = fx.topo.node_of(HostId{0});
  LinkId host_link = LinkId::invalid();
  for (std::uint32_t l = 0; l < fx.topo.num_links(); ++l) {
    if (fx.topo.link(LinkId{l}).lower == wrong_host) {
      host_link = LinkId{l};
      break;
    }
  }
  ASSERT_TRUE(host_link.valid());
  RoutingTables::Entry& entry = fx.entry_at(fx.edge, fx.far_dest);
  const Topology::Neighbor detour{wrong_host, host_link};
  fx.state.tables.assign_hops(entry, {&detour, 1});
  EXPECT_TRUE(routing::audit_tables(fx.topo, fx.state, fx.overlay)
                  .has(AuditCode::kRoutingLoop));
}

TEST(RoutingAudit, DefaultRouteGapFires) {
  RoutingFixture fx;
  RoutingTables::Entry& entry = fx.entry_at(fx.edge, fx.far_dest);
  fx.state.tables.clear_hops(entry);
  entry.cost = RoutingTables::kUnreachable;

  routing::TableAuditOptions options;
  EXPECT_FALSE(routing::audit_tables(fx.topo, fx.state, fx.overlay, options)
                   .has(AuditCode::kDefaultRouteGap));
  options.expect_full_reachability = true;
  EXPECT_TRUE(routing::audit_tables(fx.topo, fx.state, fx.overlay, options)
                  .has(AuditCode::kDefaultRouteGap));
}

// ---- proto auditors ------------------------------------------------------

TEST(ProtoAudit, ChannelConservationFires) {
  ChannelStats clean;
  clean.attempted = 10;
  clean.delivered = 9;
  clean.dropped = 2;
  clean.duplicated = 1;
  EXPECT_TRUE(proto::audit_channel(clean).ok());

  ChannelStats leaky = clean;
  leaky.delivered = 7;  // delivered + dropped != attempted + duplicated
  EXPECT_TRUE(
      proto::audit_channel(leaky).has(AuditCode::kChannelAccounting));
}

TEST(ProtoAudit, TransportCountersFire) {
  TransportStats stats;
  stats.sends = 4;
  stats.retransmits = 8;
  stats.gave_up = 1;
  EXPECT_TRUE(proto::audit_transport(stats, 8).ok());

  TransportStats impossible = stats;
  impossible.gave_up = 5;  // more abandoned than ever sent
  EXPECT_TRUE(proto::audit_transport(impossible, 8)
                  .has(AuditCode::kTransportAccounting));

  TransportStats chatty = stats;
  chatty.retransmits = 4 * 8 + 1;  // beyond the per-send retry cap
  EXPECT_TRUE(proto::audit_transport(chatty, 8)
                  .has(AuditCode::kTransportAccounting));
}

TEST(ProtoAudit, InflightConversationAtQuiescenceFires) {
  Simulator sim;
  ChannelModel channel;
  ReliableTransport transport(sim, channel);
  EXPECT_TRUE(proto::audit_transport_quiescence(transport).ok());
  transport.send(
      1.0, [] {}, [] { return false; }, [] { return false; });
  // The conversation is open until the retry loop runs to abandonment.
  EXPECT_TRUE(proto::audit_transport_quiescence(transport)
                  .has(AuditCode::kInflightAccounting));
  (void)sim.run_bounded(1'000'000);
  EXPECT_TRUE(proto::audit_transport_quiescence(transport).ok());
  EXPECT_EQ(transport.stats().gave_up, 1u);
}

TEST(ProtoAudit, CustodyInvariantsFire) {
  const Topology topo = make_tree({1, 0});
  LinkStateOverlay overlay(topo);
  std::vector<char> alive(topo.num_switches(), 1);

  const SwitchId edge = topo.switch_at(1, 0);
  LinkId uplink = LinkId::invalid();
  for (const LinkId l : topo.links_at_level(2)) {
    if (topo.link(l).lower == topo.node_of(edge)) {
      uplink = l;
      break;
    }
  }
  ASSERT_TRUE(uplink.valid());
  std::map<std::uint32_t, std::vector<LinkId>> custody;
  custody[edge.value()] = {uplink};

  // Live holder and a link that is still up: both invariants violated.
  AuditReport dirty = proto::audit_custody(topo, overlay, alive, custody);
  EXPECT_TRUE(dirty.has(AuditCode::kCrashCustody)) << dirty.to_string();
  EXPECT_TRUE(dirty.has(AuditCode::kCustodyLinkUp)) << dirty.to_string();

  // Crash the holder and take the link down: custody becomes legitimate.
  alive[edge.value()] = 0;
  overlay.fail(uplink);
  EXPECT_TRUE(proto::audit_custody(topo, overlay, alive, custody).ok());
}

TEST(ProtoAudit, ResyncDirectionFires) {
  const Topology topo = make_tree({1, 0});
  const Topology::LinkRec& rec = topo.link(topo.links_at_level(2)[0]);
  const SwitchId upper = topo.switch_of(rec.upper);
  const SwitchId lower = topo.switch_of(rec.lower);

  const AnpSimulation plain(topo, DelayModel{},
                            AnpOptions{.notify_children = false,
                                       .adjacency_resync = true});
  EXPECT_TRUE(proto::audit_resync_direction(plain, lower, upper).ok());
  EXPECT_TRUE(proto::audit_resync_direction(plain, upper, lower)
                  .has(AuditCode::kResyncDirection));

  // With downward notices enabled, a downward resync can be retracted.
  const AnpSimulation notifying(topo, DelayModel{},
                                AnpOptions{.notify_children = true,
                                           .adjacency_resync = true});
  EXPECT_TRUE(proto::audit_resync_direction(notifying, upper, lower).ok());
}

TEST(ProtoAudit, AnpWithdrawalLogStaleFires) {
  const Topology topo = make_tree({1, 0});
  AnpSimulation sim(topo);
  EXPECT_TRUE(proto::audit_anp(sim).ok());

  const LinkId link = topo.links_at_level(2)[0];
  const Topology::LinkRec& rec = topo.link(link);
  const SwitchId lower = topo.switch_of(rec.lower);
  proto::AnpAuditPeer::log_removed_by_link(
      sim, lower, link, 0, Topology::Neighbor{rec.upper, link});
  EXPECT_TRUE(
      proto::audit_anp(sim).has(AuditCode::kWithdrawalLogStale));
}

TEST(ProtoAudit, AnpAnnouncedLostMismatchFires) {
  const Topology topo = make_tree({1, 0});
  AnpSimulation sim(topo);
  const SwitchId edge = topo.switch_at(1, 0);
  const std::uint64_t far_dest = topo.params().S - 1;
  ASSERT_TRUE(sim.tables().table(edge).entry(far_dest).reachable());
  proto::AnpAuditPeer::set_announced_lost(sim, edge, far_dest, true);
  EXPECT_TRUE(
      proto::audit_anp(sim).has(AuditCode::kAnnouncedLostMismatch));
  proto::AnpAuditPeer::set_announced_lost(sim, edge, far_dest, false);
  EXPECT_TRUE(proto::audit_anp(sim).ok());
}

TEST(ProtoAudit, AnpCrashCustodyFires) {
  const Topology topo = make_tree({1, 0});
  AnpSimulation sim(topo);
  const SwitchId edge = topo.switch_at(1, 0);
  LinkId uplink = LinkId::invalid();
  for (const LinkId l : topo.links_at_level(2)) {
    if (topo.link(l).lower == topo.node_of(edge)) {
      uplink = l;
      break;
    }
  }
  ASSERT_TRUE(uplink.valid());
  proto::AnpAuditPeer::add_crash_custody(sim, edge, uplink);
  EXPECT_TRUE(proto::audit_anp(sim).has(AuditCode::kCrashCustody));

  // Dead holder, but the custody claims a link that is actually up.
  proto::AnpAuditPeer::set_alive(sim, edge, false);
  AuditReport report = proto::audit_anp(sim);
  EXPECT_FALSE(report.has(AuditCode::kCrashCustody)) << report.to_string();
  EXPECT_TRUE(report.has(AuditCode::kCustodyLinkUp)) << report.to_string();

  proto::AnpAuditPeer::overlay(sim).fail(uplink);
  EXPECT_TRUE(proto::audit_anp(sim).ok());
}

TEST(ProtoAudit, LspCrashCustodyFires) {
  const Topology topo = make_tree({1, 0});
  LspSimulation sim(topo);
  EXPECT_TRUE(proto::audit_lsp(sim).ok());
  const SwitchId edge = topo.switch_at(1, 0);
  LinkId uplink = LinkId::invalid();
  for (const LinkId l : topo.links_at_level(2)) {
    if (topo.link(l).lower == topo.node_of(edge)) {
      uplink = l;
      break;
    }
  }
  ASSERT_TRUE(uplink.valid());
  proto::LspAuditPeer::add_crash_custody(sim, edge, uplink);
  EXPECT_TRUE(proto::audit_lsp(sim).has(AuditCode::kCrashCustody));
  proto::LspAuditPeer::set_alive(sim, edge, false);
  proto::LspAuditPeer::overlay(sim).fail(uplink);
  EXPECT_TRUE(proto::audit_lsp(sim).ok());
}

// ---- sim::audit_queue ----------------------------------------------------

TEST(SimAudit, CleanQueuePasses) {
  Simulator sim;
  EXPECT_TRUE(sim::audit_queue(sim).ok());
  sim.schedule(1.0, [] {});
  sim.schedule(2.0, [] {});
  EXPECT_TRUE(sim::audit_queue(sim).ok());
  (void)sim.run_bounded(10);
  EXPECT_TRUE(sim::audit_queue(sim).ok());
}

TEST(SimAudit, TimeMonotonicityFires) {
  Simulator sim;
  sim::SimAuditPeer::push_unchecked(sim, 5.0);
  EXPECT_TRUE(sim::audit_queue(sim).ok());
  sim::SimAuditPeer::set_now(sim, 10.0);  // clock passes a pending event
  EXPECT_TRUE(sim::audit_queue(sim).has(AuditCode::kTimeMonotonicity));
}

TEST(SimAudit, QueueAccountingFires) {
  Simulator sim;
  sim.schedule(1.0, [] {});
  (void)sim.run_bounded(10);
  EXPECT_TRUE(sim::audit_queue(sim).ok());
  sim::SimAuditPeer::set_events_processed(sim, 7);  // seq numbers leak
  EXPECT_TRUE(sim::audit_queue(sim).has(AuditCode::kQueueAccounting));
}

}  // namespace
}  // namespace aspen
