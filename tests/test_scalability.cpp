// Tests for the Figure 8/9 convergence-versus-scalability series.
#include <gtest/gtest.h>

#include "src/analysis/scalability.h"
#include "src/aspen/generator.h"

namespace aspen {
namespace {

const TradeoffPoint* find_point(const std::vector<TradeoffPoint>& points,
                                const FaultToleranceVector& ftv) {
  for (const TradeoffPoint& p : points) {
    if (p.ftv == ftv) return &p;
  }
  return nullptr;
}

TEST(Scalability, Figure8SeriesForN4K6) {
  const auto points = scalability_tradeoff(4, 6);
  ASSERT_EQ(points.size(), 8u);

  // Fat tree: zero hosts removed, worst convergence.
  const TradeoffPoint* fat = find_point(points, {0, 0, 0});
  ASSERT_NE(fat, nullptr);
  EXPECT_EQ(fat->hosts_removed, 0u);
  EXPECT_DOUBLE_EQ(fat->average_convergence_hops, 4.0);

  // "At the other end are trees with high fault tolerance … but with over
  // 95% of the hosts removed."
  const TradeoffPoint* full = find_point(points, {2, 2, 2});
  ASSERT_NE(full, nullptr);
  EXPECT_DOUBLE_EQ(full->average_convergence_hops, 0.0);
  EXPECT_GT(full->removed_percent(162), 95.0);

  // The three 54-host middle-ground trees of §9.1.
  for (const auto& [ftv, hops] :
       std::vector<std::pair<FaultToleranceVector, double>>{
           {{0, 0, 2}, 7.0 / 3.0}, {{0, 2, 0}, 4.0 / 3.0},
           {{2, 0, 0}, 1.0}}) {
    const TradeoffPoint* p = find_point(points, ftv);
    ASSERT_NE(p, nullptr) << ftv.to_string();
    EXPECT_EQ(p->hosts, 54u);
    EXPECT_EQ(p->hosts_removed, 108u);
    EXPECT_NEAR(p->average_convergence_hops, hops, 1e-12);
  }

  // "<2,0,0> and <0,2,2>: both have average update propagation distances
  // of 1, but the former supports 54 hosts and the latter only 18."
  const TradeoffPoint* a = find_point(points, {2, 0, 0});
  const TradeoffPoint* b = find_point(points, {0, 2, 2});
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_DOUBLE_EQ(a->average_convergence_hops,
                   b->average_convergence_hops);
  EXPECT_EQ(a->hosts, 54u);
  EXPECT_EQ(b->hosts, 18u);
}

TEST(Scalability, PercentNormalizers) {
  const auto points = scalability_tradeoff(4, 6);
  const TradeoffPoint* fat = find_point(points, {0, 0, 0});
  ASSERT_NE(fat, nullptr);
  // Fig. 8: "Because we average convergence times across tree levels, no
  // individual bar in the graph reaches 100% of the maximum hop count."
  for (const TradeoffPoint& p : points) {
    EXPECT_LT(p.convergence_percent(5), 100.0);
    EXPECT_LE(p.removed_percent(162), 100.0);
  }
  EXPECT_DOUBLE_EQ(fat->convergence_percent(5), 80.0);
}

TEST(Scalability, SortForDisplayOrdersLikeTheFigure) {
  auto points = scalability_tradeoff(4, 6);
  sort_for_display(points);
  EXPECT_TRUE(points.front().ftv.is_fat_tree());
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i - 1].hosts_removed, points[i].hosts_removed);
    if (points[i - 1].hosts_removed == points[i].hosts_removed) {
      EXPECT_GE(points[i - 1].average_convergence_hops,
                points[i].average_convergence_hops);
    }
  }
}

TEST(Scalability, CollapseDuplicatesMatchesFigure9Treatment) {
  // n=5, k=16: "numerous trees (FTVs) all correspond to a single
  // [host count, convergence time] pair.  We collapsed all such duplicates
  // into single entries."
  const auto all = scalability_tradeoff(5, 16);
  const auto collapsed = collapse_duplicates(all);
  EXPECT_LT(collapsed.size(), all.size());
  for (std::size_t i = 1; i < collapsed.size(); ++i) {
    const bool same = collapsed[i - 1].hosts == collapsed[i].hosts &&
                      collapsed[i - 1].average_convergence_hops ==
                          collapsed[i].average_convergence_hops;
    EXPECT_FALSE(same);
  }
}

TEST(Scalability, Figure9aShape) {
  // n=5, k=16: max hosts 65,536 (paper: "Max Hosts=65,536", Fig. 9(a)).
  EXPECT_EQ(fat_tree(5, 16).num_hosts(), 65'536u);
  const auto points = scalability_tradeoff(5, 16);
  EXPECT_GT(points.size(), 20u);  // many valid trees at this size
  // Larger fault tolerance never increases host count.
  const TradeoffPoint* fat = find_point(
      points, FaultToleranceVector::fat_tree(5));
  ASSERT_NE(fat, nullptr);
  for (const TradeoffPoint& p : points) {
    EXPECT_LE(p.hosts, fat->hosts);
  }
}

TEST(Scalability, Figure9bShape) {
  // n=3, k=64: max hosts 65,536, max hops 3.
  EXPECT_EQ(fat_tree(3, 64).num_hosts(), 65'536u);
  const auto points = scalability_tradeoff(3, 64);
  for (const TradeoffPoint& p : points) {
    EXPECT_LE(p.average_convergence_hops, 3.0);
  }
  // "With only modest reductions to host count, the reaction time of a
  // tree can be significantly improved": some tree keeps >= 1/4 of hosts
  // with average convergence <= 1 hop.
  bool good_middle_ground = false;
  for (const TradeoffPoint& p : points) {
    if (p.hosts * 4 >= 65'536u && p.average_convergence_hops <= 1.0) {
      good_middle_ground = true;
    }
  }
  EXPECT_TRUE(good_middle_ground);
}

TEST(Scalability, SwitchCountsTrackHostCounts) {
  for (const TradeoffPoint& p : scalability_tradeoff(4, 6)) {
    // switches = (n−1/2)·S and hosts = (k/2)·S → fixed ratio 7/6 at n=4,k=6.
    EXPECT_DOUBLE_EQ(static_cast<double>(p.total_switches) /
                         static_cast<double>(p.hosts),
                     3.5 / 3.0);
  }
}

}  // namespace
}  // namespace aspen
