// Tests for path counting: the DCC property (§5.2 footnote 8) and the
// "diverse yet short paths" of §1.
#include <gtest/gtest.h>

#include "src/aspen/enumerate.h"
#include "src/aspen/generator.h"
#include "src/routing/paths.h"
#include "src/routing/updown.h"
#include "src/util/status.h"

namespace aspen {
namespace {

TEST(Paths, DccCountsTopToBottomPaths) {
  // "The DCC counts distinct paths from an Ln switch to an L1 switch."
  for (const auto& ftv : std::vector<std::vector<int>>{
           {0, 0}, {1, 0}, {0, 1}, {0, 0, 0}, {1, 0, 0}, {0, 1, 0},
           {1, 1, 0}}) {
    const int n = static_cast<int>(ftv.size()) + 1;
    const auto params = try_generate_tree(n, 4, FaultToleranceVector(ftv));
    if (!params) continue;
    const Topology topo = Topology::build(*params);
    const LinkStateOverlay overlay(topo);
    SCOPED_TRACE(topo.describe());
    const SwitchId top = topo.switch_at(n, 0);
    for (std::uint64_t e = 0; e < params->S; ++e) {
      EXPECT_EQ(count_down_paths(topo, overlay, top, topo.switch_at(1, e)),
                params->dcc());
    }
  }
}

TEST(Paths, DccHoldsForAll4Level6PortTrees) {
  for (const TreeParams& params : enumerate_trees(4, 6)) {
    const Topology topo = Topology::build(params);
    const LinkStateOverlay overlay(topo);
    const SwitchId top = topo.switch_at(4, 0);
    EXPECT_EQ(count_down_paths(topo, overlay, top, topo.switch_at(1, 0)),
              params.dcc())
        << params.to_string();
  }
}

TEST(Paths, FailureReducesPathCount) {
  const Topology topo =
      Topology::build(generate_tree(4, 4, FaultToleranceVector{0, 1, 0}));
  LinkStateOverlay overlay(topo);
  const SwitchId top = topo.switch_at(4, 0);
  const SwitchId edge = topo.switch_at(1, 0);
  const std::uint64_t before = count_down_paths(topo, overlay, top, edge);
  EXPECT_EQ(before, 2u);  // DCC = 2

  // Fail one L3→L2 link on a path from `top` to `edge`.
  const SwitchId l3 = topo.switch_of(topo.down_neighbors(top)[0].node);
  overlay.fail(topo.down_neighbors(l3)[0].link);
  const std::uint64_t after = count_down_paths(topo, overlay, top, edge);
  EXPECT_LE(after, before);
}

TEST(Paths, CountDownPathsFromEdgeIsIdentityOrZero) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  const LinkStateOverlay overlay(topo);
  EXPECT_EQ(count_down_paths(topo, overlay, topo.switch_at(1, 0),
                             topo.switch_at(1, 0)),
            1u);
  EXPECT_EQ(count_down_paths(topo, overlay, topo.switch_at(1, 1),
                             topo.switch_at(1, 0)),
            0u);
  EXPECT_THROW((void)count_down_paths(topo, overlay, topo.switch_at(3, 0),
                                topo.switch_at(2, 0)),
               PreconditionError);
}

TEST(Paths, EnumerateShortestPathsInFatTree) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  const RoutingState routes = compute_updown_routes(topo);
  // Cross-pod flow: 2 uplink choices at the edge × 2 core choices at the
  // agg = 4 distinct shortest paths.
  const auto paths =
      enumerate_shortest_paths(topo, routes, HostId{0}, HostId{15});
  EXPECT_EQ(paths.size(), 4u);
  for (const auto& path : paths) {
    EXPECT_EQ(path.size(), 7u);  // h, e, a, c, a, e, h
    EXPECT_EQ(path.front(), topo.node_of(HostId{0}));
    EXPECT_EQ(path.back(), topo.node_of(HostId{15}));
  }
  EXPECT_EQ(count_shortest_paths(topo, routes, HostId{0}, HostId{15}), 4u);
}

TEST(Paths, EnumerateIntraPodPaths) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  const RoutingState routes = compute_updown_routes(topo);
  // Same pod: apex at L2, one choice per agg → 2 paths.
  EXPECT_EQ(count_shortest_paths(topo, routes, HostId{0}, HostId{2}), 2u);
  // Same edge: exactly one path (via the edge switch).
  EXPECT_EQ(count_shortest_paths(topo, routes, HostId{0}, HostId{1}), 1u);
}

TEST(Paths, CountMatchesEnumerationEverywhere) {
  const Topology topo =
      Topology::build(generate_tree(4, 4, FaultToleranceVector{1, 0, 0}));
  const RoutingState routes = compute_updown_routes(topo);
  for (std::uint32_t s = 0; s < topo.num_hosts(); s += 5) {
    for (std::uint32_t d = 0; d < topo.num_hosts(); d += 7) {
      if (s == d) continue;
      EXPECT_EQ(
          enumerate_shortest_paths(topo, routes, HostId{s}, HostId{d}).size(),
          count_shortest_paths(topo, routes, HostId{s}, HostId{d}));
    }
  }
}

TEST(Paths, RedundancyMultipliesPathDiversity) {
  // FTV <1,0,0> doubles the top-level connections, doubling cross-subtree
  // shortest paths relative to the fat tree of the same depth.
  const Topology fat = Topology::build(fat_tree(4, 4));
  const Topology aspen =
      Topology::build(generate_tree(4, 4, FaultToleranceVector{1, 0, 0}));
  const RoutingState fat_routes = compute_updown_routes(fat);
  const RoutingState aspen_routes = compute_updown_routes(aspen);

  const auto cross_paths = [](const Topology& topo,
                              const RoutingState& routes) {
    const HostId src{0};
    const auto dst =
        static_cast<std::uint32_t>(topo.num_hosts() - 1);
    return count_shortest_paths(topo, routes, src, HostId{dst});
  };
  // Fat tree n=4: 2·2·2 up choices × 1 descent = 8 paths.  Aspen <1,0,0>:
  // same up choices but every root has c_4 = 2 links into the destination
  // subtree → 16 paths, double the diversity (over half as many hosts).
  EXPECT_EQ(cross_paths(fat, fat_routes), 8u);
  EXPECT_EQ(cross_paths(aspen, aspen_routes), 16u);
}

}  // namespace
}  // namespace aspen
