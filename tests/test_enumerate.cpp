// Tests for exhaustive Aspen tree enumeration (§4.1.2).
#include <gtest/gtest.h>

#include <algorithm>

#include "src/aspen/enumerate.h"
#include "src/aspen/generator.h"
#include "src/util/status.h"

namespace aspen {
namespace {

TEST(Enumerate, Figure3aListsExactlyEightTrees) {
  // "Figure 3(a) lists all possible n=4, k=6 Aspen trees, omitting those
  // with a non-integer value for m_i at any level."
  const auto trees = enumerate_trees(4, 6);
  ASSERT_EQ(trees.size(), 8u);
  EXPECT_EQ(count_trees(4, 6), 8u);

  const std::vector<FaultToleranceVector> expected{
      {0, 0, 0}, {0, 0, 2}, {0, 2, 0}, {0, 2, 2},
      {2, 0, 0}, {2, 0, 2}, {2, 2, 0}, {2, 2, 2},
  };
  std::vector<FaultToleranceVector> actual;
  for (const TreeParams& t : trees) actual.push_back(t.ftv());
  // Order-insensitive comparison; the fat tree must come first.
  EXPECT_EQ(actual.front(), expected.front());
  for (const auto& e : expected) {
    EXPECT_NE(std::find(actual.begin(), actual.end(), e), actual.end())
        << "missing " << e.to_string();
  }
}

TEST(Enumerate, FatTreeAlwaysFirst) {
  for (const auto& [n, k] :
       std::vector<std::pair<int, int>>{{3, 4}, {4, 4}, {3, 8}, {5, 4}}) {
    const auto trees = enumerate_trees(n, k);
    ASSERT_FALSE(trees.empty());
    EXPECT_TRUE(trees.front().ftv().is_fat_tree())
        << "n=" << n << " k=" << k;
  }
}

TEST(Enumerate, EveryEnumeratedTreeIsValid) {
  for (const TreeParams& t : enumerate_trees(5, 4)) {
    EXPECT_NO_THROW(t.validate()) << t.to_string();
  }
}

TEST(Enumerate, CountsGrowWithPortCount) {
  EXPECT_LT(count_trees(3, 4), count_trees(3, 8));
  EXPECT_LT(count_trees(3, 8), count_trees(3, 16));
}

TEST(Enumerate, KnownSmallCounts) {
  // n=3, k=4: c_3 ∈ {1,2,4}, c_2 ∈ {1,2}; S must stay even and m integral.
  const auto trees = enumerate_trees(3, 4);
  for (const TreeParams& t : trees) {
    EXPECT_EQ(t.n, 3);
    EXPECT_EQ(t.k, 4);
  }
  EXPECT_EQ(trees.size(), count_trees(3, 4));
  EXPECT_GE(trees.size(), 4u);
}

TEST(Enumerate, ForEachStopsEarly) {
  std::size_t visited = 0;
  for_each_tree(4, 6, [&](const TreeParams&) {
    ++visited;
    return visited < 3;
  });
  EXPECT_EQ(visited, 3u);
}

TEST(Enumerate, MinHostsFilter) {
  EnumerationFilter filter;
  filter.min_hosts = 54;
  const auto trees = enumerate_trees(4, 6, filter);
  ASSERT_FALSE(trees.empty());
  for (const TreeParams& t : trees) EXPECT_GE(t.num_hosts(), 54u);
  // <2,2,2> (6 hosts) must be excluded.
  for (const TreeParams& t : trees) {
    EXPECT_NE(t.ftv(), (FaultToleranceVector{2, 2, 2}));
  }
}

TEST(Enumerate, MaxSwitchesFilter) {
  EnumerationFilter filter;
  filter.max_switches = 63;
  for (const TreeParams& t : enumerate_trees(4, 6, filter)) {
    EXPECT_LE(t.total_switches(), 63u);
  }
  // The fat tree (189 switches) is excluded.
  EXPECT_EQ(enumerate_trees(4, 6, filter).size(), 7u);
}

TEST(Enumerate, MaxFaultToleranceFilter) {
  EnumerationFilter filter;
  filter.max_fault_tolerance = 0;
  const auto trees = enumerate_trees(4, 6, filter);
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_TRUE(trees.front().ftv().is_fat_tree());
}

TEST(Enumerate, MaxPropagationFilter) {
  // Only trees whose worst failure propagates <= 1 hop: requires fault
  // tolerance at or within one level above every level.
  EnumerationFilter filter;
  filter.max_propagation_hops = 1;
  for (const TreeParams& t : enumerate_trees(4, 6, filter)) {
    const auto ftv = t.ftv();
    for (Level i = 2; i <= 4; ++i) {
      const Level f = ftv.nearest_fault_tolerant_level_at_or_above(i);
      ASSERT_NE(f, 0) << t.to_string();
      EXPECT_LE(f - i, 1) << t.to_string();
    }
  }
  // <2,2,2> qualifies; the fat tree does not.
  EXPECT_FALSE(enumerate_trees(4, 6, filter).empty());
}

TEST(Enumerate, CombinedFilters) {
  EnumerationFilter filter;
  filter.min_hosts = 10;
  filter.max_switches = 100;
  for (const TreeParams& t : enumerate_trees(4, 6, filter)) {
    EXPECT_GE(t.num_hosts(), 10u);
    EXPECT_LE(t.total_switches(), 100u);
  }
}

TEST(Enumerate, PreconditionsThrow) {
  EXPECT_THROW(enumerate_trees(1, 4), PreconditionError);
  EXPECT_THROW(enumerate_trees(3, 7), PreconditionError);
}

}  // namespace
}  // namespace aspen
