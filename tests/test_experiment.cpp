// Tests for the §9.2 experiment drivers: single failures and sweeps,
// including the paper's headline LSP-vs-ANP comparisons on small trees.
#include <gtest/gtest.h>

#include <limits>

#include "src/aspen/fixed_hosts.h"
#include "src/aspen/generator.h"
#include "src/proto/experiment.h"
#include "src/util/status.h"

namespace aspen {
namespace {

constexpr std::uint64_t kAllPairs = std::numeric_limits<std::uint64_t>::max();

TEST(Experiment, MakeProtocolProducesConvergedSims) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  for (const auto kind : {ProtocolKind::kLsp, ProtocolKind::kAnp}) {
    const auto proto = make_protocol(kind, topo);
    EXPECT_EQ(&proto->topology(), &topo);
    EXPECT_EQ(proto->overlay().num_failed(), 0u);
    EXPECT_EQ(proto->tables().tables.size(), topo.num_switches());
  }
}

TEST(Experiment, SingleFailureRoundTrip) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  auto proto = make_protocol(ProtocolKind::kLsp, topo);
  ExperimentOptions options;
  options.connectivity_flows = kAllPairs;
  const LinkId link = topo.links_at_level(3)[0];
  const SingleFailureResult result = run_single_failure(*proto, link, options);
  EXPECT_GT(result.failure.switches_reacted, 0u);
  EXPECT_GT(result.recovery.switches_informed, 0u);
  ASSERT_TRUE(result.post_failure_delivery.has_value());
  EXPECT_EQ(result.post_failure_delivery->undelivered(), 0u);
  EXPECT_TRUE(proto->overlay().is_up(link));  // recovered
}

TEST(Experiment, SampledConnectivityCheck) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  auto proto = make_protocol(ProtocolKind::kLsp, topo);
  ExperimentOptions options;
  options.connectivity_flows = 100;
  const auto result =
      run_single_failure(*proto, topo.links_at_level(2)[0], options);
  ASSERT_TRUE(result.post_failure_delivery.has_value());
  EXPECT_EQ(result.post_failure_delivery->flows, 100u);
}

TEST(Experiment, SweepCoversAllInterSwitchLinks) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  SweepOptions options;
  const SweepResult sweep =
      sweep_link_failures(ProtocolKind::kAnp, topo, options);
  EXPECT_EQ(sweep.failures, topo.params().inter_switch_links());
  EXPECT_EQ(sweep.convergence_ms.count(), sweep.failures);
}

TEST(Experiment, SweepLevelFilter) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  SweepOptions options;
  options.levels = {3};
  const SweepResult sweep =
      sweep_link_failures(ProtocolKind::kAnp, topo, options);
  EXPECT_EQ(sweep.failures, topo.links_at_level(3).size());
  options.levels = {9};
  EXPECT_THROW((void)sweep_link_failures(ProtocolKind::kAnp, topo, options),
               PreconditionError);
}

TEST(Experiment, SweepSamplingCapsPerLevel) {
  const Topology topo = Topology::build(fat_tree(3, 6));
  SweepOptions options;
  options.max_links_per_level = 3;
  const SweepResult sweep =
      sweep_link_failures(ProtocolKind::kAnp, topo, options);
  EXPECT_EQ(sweep.failures, 6u);  // 3 per level × 2 inter-switch levels
}

TEST(Experiment, RecoveryVerificationPasses) {
  const Topology topo =
      Topology::build(generate_tree(4, 4, FaultToleranceVector{1, 0, 0}));
  for (const auto kind : {ProtocolKind::kLsp, ProtocolKind::kAnp}) {
    SweepOptions options;
    options.verify_recovery_restores_tables = true;
    options.max_links_per_level = 4;
    const SweepResult sweep = sweep_link_failures(kind, topo, options);
    EXPECT_EQ(sweep.recovery_mismatches, 0u) << to_cstring(kind);
  }
}

TEST(Experiment, LspAlwaysRestoresConnectivity) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  SweepOptions options;
  options.connectivity_flows = kAllPairs;
  const SweepResult sweep =
      sweep_link_failures(ProtocolKind::kLsp, topo, options);
  EXPECT_EQ(sweep.fully_restored, sweep.failures);
}

TEST(Experiment, AnpRestorationMatchesCoverageOnVl2Tree) {
  // FTV <1,0,0>: every failure level has fault tolerance above (extended
  // mode closes the up-choice gap), so every failure is fully masked.
  const Topology topo =
      Topology::build(generate_tree(4, 4, FaultToleranceVector{1, 0, 0}));
  SweepOptions options;
  options.connectivity_flows = kAllPairs;
  options.anp.notify_children = true;
  const SweepResult sweep =
      sweep_link_failures(ProtocolKind::kAnp, topo, options);
  EXPECT_EQ(sweep.fully_restored, sweep.failures);
}

TEST(Experiment, HeadlineComparisonAnpBeatsLsp) {
  // The Fig. 10 claim on a small pair: same host count, ANP converges
  // orders of magnitude faster and involves far fewer switches.
  const int k = 4;
  const int n = 3;
  const Topology fat = Topology::build(fat_tree(n, k));
  const Topology aspen =
      Topology::build(design_fixed_host_tree(n, k, /*extra_levels=*/1));
  ASSERT_EQ(fat.num_hosts(), aspen.num_hosts());

  SweepOptions options;
  const SweepResult lsp = sweep_link_failures(ProtocolKind::kLsp, fat, options);
  const SweepResult anp =
      sweep_link_failures(ProtocolKind::kAnp, aspen, options);

  EXPECT_GT(lsp.convergence_ms.mean(), 10 * anp.convergence_ms.mean());
  // ANP informs a small fraction of switches; LSP floods to all (compare
  // reacted means as the paper's footnote-12 metric).
  EXPECT_LT(anp.reacted.mean(),
            static_cast<double>(aspen.num_switches()) * 0.2);
  EXPECT_GT(lsp.messages.mean(), anp.messages.mean());
}

TEST(Experiment, SweepIsDeterministic) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  SweepOptions options;
  options.max_links_per_level = 2;
  options.seed = 17;
  const SweepResult a = sweep_link_failures(ProtocolKind::kAnp, topo, options);
  const SweepResult b = sweep_link_failures(ProtocolKind::kAnp, topo, options);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_DOUBLE_EQ(a.convergence_ms.mean(), b.convergence_ms.mean());
  EXPECT_DOUBLE_EQ(a.messages.total(), b.messages.total());
}

}  // namespace
}  // namespace aspen
