// Tests for the what-if query service (src/serve): wire framing, the
// digest-keyed result cache, the server's admission ladder (malformed /
// duplicate / shed / deadline / admit), retrying clients over lossy
// channels, fingerprint-sealed kill-and-resume checkpoints, the stepwise
// ChaosCampaign driver, and the serve-under-chaos harness with its
// post-hoc label auditor — including golden-trace and thread-count
// byte-identity.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/aspen/generator.h"
#include "src/fault/chaos.h"
#include "src/obs/obs.h"
#include "src/serve/cache.h"
#include "src/serve/client.h"
#include "src/serve/driver.h"
#include "src/serve/server.h"
#include "src/serve/snapshot.h"
#include "src/serve/wire.h"
#include "src/topo/link_state.h"
#include "src/util/parallel.h"
#include "src/util/status.h"
#include "tests/trace_golden.h"

namespace aspen {
namespace {

using namespace serve;  // NOLINT(google-build-using-namespace)

Topology make_tree(std::vector<int> ftv, int k = 4) {
  const int n = static_cast<int>(ftv.size()) + 1;
  return Topology::build(generate_tree(n, k, FaultToleranceVector(ftv)));
}

/// One server with its registry and simulator, on a small tree.
struct Rig {
  Topology topo;
  Simulator sim;
  SnapshotRegistry registry;
  Server server;

  explicit Rig(ServerOptions options = {})
      : topo(make_tree({0, 1, 0})),
        registry(topo, DestGranularity::kEdge),
        server(sim, topo, registry, options) {}
};

Request route_request(std::uint64_t id, std::uint32_t src = 0,
                      std::uint32_t dst = 1) {
  Request r;
  r.id = id;
  r.kind = QueryKind::kRoute;
  r.src = src;
  r.dst = dst;
  r.flow_seed = 7;
  return r;
}

/// Reply sink that appends every issued frame.
Server::Reply collect(std::vector<std::string>& frames) {
  return [&frames](const std::string& frame) { frames.push_back(frame); };
}

Response decode_one(const std::string& frame) {
  Response r;
  EXPECT_TRUE(decode_response(frame, r));
  return r;
}

// ---- Wire protocol -----------------------------------------------------

TEST(ServeWire, RequestRoundTripsByteExact) {
  Request req;
  req.id = 0x0123456789ABCDEFull;
  req.kind = QueryKind::kWhatIf;
  req.deadline_ms = 12.75;
  req.src = 3;
  req.dst = 9;
  req.fail_links = {4, 0, 17};
  req.flows = 5;
  req.flow_seed = 0xFEEDull;

  const std::string frame = encode_request(req);
  Request back;
  ASSERT_TRUE(decode_request(frame, back));
  EXPECT_EQ(back.id, req.id);
  EXPECT_EQ(back.kind, req.kind);
  EXPECT_EQ(back.deadline_ms, req.deadline_ms);
  EXPECT_EQ(back.src, req.src);
  EXPECT_EQ(back.dst, req.dst);
  EXPECT_EQ(back.fail_links, req.fail_links);
  EXPECT_EQ(back.flows, req.flows);
  EXPECT_EQ(back.flow_seed, req.flow_seed);
  EXPECT_EQ(encode_request(back), frame);
}

TEST(ServeWire, ResponseRoundTripsByteExact) {
  Response resp;
  resp.id = 42;
  resp.status = ResponseStatus::kOk;
  resp.snapshot_digest = 0xD16E57ull;
  resp.staleness_events = 3;
  resp.staleness_ms = 7.03125;
  resp.from_cache = true;
  resp.result = {1, 4, 0, 0, 12, 4};

  const std::string frame = encode_response(resp);
  const Response back = decode_one(frame);
  EXPECT_EQ(back.id, resp.id);
  EXPECT_EQ(back.status, resp.status);
  EXPECT_EQ(back.snapshot_digest, resp.snapshot_digest);
  EXPECT_EQ(back.staleness_events, resp.staleness_events);
  EXPECT_EQ(back.staleness_ms, resp.staleness_ms);
  EXPECT_EQ(back.from_cache, resp.from_cache);
  EXPECT_EQ(back.result, resp.result);
  EXPECT_EQ(encode_response(back), frame);
}

TEST(ServeWire, DamagedFramesDecodeToMalformedNotWrongAnswers) {
  const std::string good = encode_request(route_request(1));
  Request req;
  Response resp;

  EXPECT_FALSE(decode_request("", req));
  EXPECT_FALSE(decode_request(good.substr(0, good.size() - 1), req));
  EXPECT_FALSE(decode_request(good + "x", req));
  std::string bad_magic = good;
  bad_magic[4] ^= 0x5A;  // payload byte 0: the magic
  EXPECT_FALSE(decode_request(bad_magic, req));
  // Direction confusion: a request frame is not a response frame.
  EXPECT_FALSE(decode_response(good, resp));
  EXPECT_TRUE(decode_request(good, req));
}

TEST(ServeWire, QueryFingerprintIsContentIdentityOnly) {
  Request a = route_request(1, 0, 5);
  Request b = route_request(999, 0, 5);  // different id
  b.deadline_ms = 42.0;                  // different deadline
  EXPECT_EQ(query_fingerprint(a), query_fingerprint(b));

  Request c = route_request(1, 0, 6);  // different content
  EXPECT_NE(query_fingerprint(a), query_fingerprint(c));
  Request d = a;
  d.kind = QueryKind::kWhatIf;
  EXPECT_NE(query_fingerprint(a), query_fingerprint(d));
}

// ---- Result cache ------------------------------------------------------

TEST(ServeCache, FifoEvictionWithCounters) {
  ResultCache cache(2);
  const QueryResult r1{1, 2, 0, 0, 0, 0};
  const QueryResult r2{0, 0, 3, 4, 0, 0};
  const QueryResult r3{0, 0, 0, 0, 5, 6};

  EXPECT_EQ(cache.find(10, 1), nullptr);
  cache.insert(10, 1, r1);
  cache.insert(10, 2, r2);
  ASSERT_NE(cache.find(10, 1), nullptr);
  EXPECT_EQ(*cache.find(10, 2), r2);

  cache.insert(10, 3, r3);  // evicts (10,1), the oldest insertion
  EXPECT_EQ(cache.find(10, 1), nullptr);
  EXPECT_EQ(*cache.find(10, 3), r3);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(ServeCache, ReinsertingAKeyDoesNotReAgeIt) {
  ResultCache cache(2);
  const QueryResult r{1, 0, 0, 0, 0, 0};
  cache.insert(1, 1, r);
  cache.insert(1, 2, r);
  cache.insert(1, 1, r);  // overwrite: (1,1) keeps its original age
  cache.insert(1, 3, r);  // still evicts (1,1), the oldest insertion
  EXPECT_EQ(cache.find(1, 1), nullptr);
  ASSERT_NE(cache.find(1, 2), nullptr);
  ASSERT_NE(cache.find(1, 3), nullptr);
}

// ---- Snapshot registry -------------------------------------------------

TEST(ServeSnapshot, StalenessCountsLiveEventsSinceSeal) {
  const Topology topo = make_tree({0, 1, 0});
  SnapshotRegistry registry(topo, DestGranularity::kEdge);
  EXPECT_EQ(registry.seals(), 1u);  // sealed intact at construction
  EXPECT_EQ(registry.staleness_events(), 0u);

  registry.note_live_event();
  registry.note_live_event();
  EXPECT_EQ(registry.staleness_events(), 2u);

  LinkStateOverlay live(topo);
  const std::uint64_t intact = registry.current().pinned->fingerprint;
  ASSERT_TRUE(live.fail(topo.links_at_level(2)[0]));
  const Snapshot& sealed = registry.seal(live, 5.0);
  EXPECT_EQ(registry.staleness_events(), 0u);
  EXPECT_EQ(sealed.seal_epoch, 2u);
  EXPECT_EQ(sealed.seal_time_ms, 5.0);
  EXPECT_NE(sealed.pinned->fingerprint, intact);
  EXPECT_EQ(registry.seals(), 2u);
}

// ---- Server admission ladder -------------------------------------------

TEST(ServeServer, AnswersRouteQueriesWithSnapshotLabels) {
  Rig rig;
  std::vector<std::string> frames;
  rig.server.handle_frame(encode_request(route_request(1)), collect(frames));
  rig.sim.run();

  ASSERT_EQ(frames.size(), 1u);
  const Response r = decode_one(frames[0]);
  EXPECT_EQ(r.id, 1u);
  EXPECT_EQ(r.status, ResponseStatus::kOk);
  EXPECT_EQ(r.snapshot_digest, rig.registry.current().pinned->fingerprint);
  EXPECT_EQ(r.staleness_events, 0u);
  EXPECT_EQ(r.result.delivered, 1u);  // intact fabric: the walk delivers
  EXPECT_GT(r.result.hops, 0u);
  EXPECT_EQ(rig.server.stats().admitted, 1u);
  EXPECT_EQ(rig.server.stats().completed, 1u);
}

TEST(ServeServer, MalformedAndInvalidFramesNeverTouchTheCpu) {
  Rig rig;
  std::vector<std::string> frames;
  rig.server.handle_frame("not a frame", collect(frames));
  // Shaped but senseless: src == dst.
  rig.server.handle_frame(encode_request(route_request(2, 3, 3)),
                          collect(frames));
  // Out-of-range destination host.
  rig.server.handle_frame(
      encode_request(route_request(
          3, 0, static_cast<std::uint32_t>(rig.topo.num_hosts()))),
      collect(frames));

  ASSERT_EQ(frames.size(), 3u);
  for (const std::string& frame : frames) {
    EXPECT_EQ(decode_one(frame).status, ResponseStatus::kMalformed);
  }
  EXPECT_EQ(rig.server.stats().malformed, 3u);
  EXPECT_EQ(rig.server.stats().admitted, 0u);
  rig.sim.run();
  EXPECT_EQ(rig.server.stats().completed, 0u);
}

TEST(ServeServer, ShedsAtTheInflightWatermark) {
  ServerOptions options;
  options.inflight_watermark = 1;
  Rig rig(options);
  std::vector<std::string> first, second;
  rig.server.handle_frame(encode_request(route_request(1)), collect(first));
  rig.server.handle_frame(encode_request(route_request(2, 0, 2)),
                          collect(second));

  // The second query was shed immediately, with labels attached.
  ASSERT_EQ(second.size(), 1u);
  const Response shed = decode_one(second[0]);
  EXPECT_EQ(shed.status, ResponseStatus::kShed);
  EXPECT_EQ(shed.snapshot_digest,
            rig.registry.current().pinned->fingerprint);
  EXPECT_EQ(rig.server.stats().shed, 1u);

  rig.sim.run();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(decode_one(first[0]).status, ResponseStatus::kOk);
  EXPECT_EQ(rig.server.stats().admitted, 1u);

  // The watermark frees up once the first query completes.
  std::vector<std::string> third;
  rig.server.handle_frame(encode_request(route_request(3, 0, 3)),
                          collect(third));
  rig.sim.run();
  ASSERT_EQ(third.size(), 1u);
  EXPECT_EQ(decode_one(third[0]).status, ResponseStatus::kOk);
}

TEST(ServeServer, DeadlineProjectionCountsCpuQueueWait) {
  Rig rig;  // route service: 0.05 ms
  std::vector<std::string> first, tight, queued;
  rig.server.handle_frame(encode_request(route_request(1)), collect(first));

  // Alone, 0.07 ms of budget would fit a 0.05 ms query — but the CPU is
  // busy until 0.05, so the projected completion (0.10) busts the budget.
  Request r2 = route_request(2, 0, 2);
  r2.deadline_ms = 0.07;
  rig.server.handle_frame(encode_request(r2), collect(tight));
  ASSERT_EQ(tight.size(), 1u);
  EXPECT_EQ(decode_one(tight[0]).status, ResponseStatus::kDeadlineExceeded);
  EXPECT_EQ(rig.server.stats().deadline_rejected, 1u);

  // A roomier budget admits behind the same queue.
  Request r3 = route_request(3, 0, 3);
  r3.deadline_ms = 0.12;
  rig.server.handle_frame(encode_request(r3), collect(queued));
  rig.sim.run();
  ASSERT_EQ(queued.size(), 1u);
  EXPECT_EQ(decode_one(queued[0]).status, ResponseStatus::kOk);
  EXPECT_EQ(rig.server.stats().admitted, 2u);
  EXPECT_EQ(rig.server.stats().completed, 2u);
}

TEST(ServeServer, CompletedDuplicateReplaysStoredBytesExactly) {
  Rig rig;
  const std::string frame = encode_request(route_request(7));
  std::vector<std::string> first, retry;
  rig.server.handle_frame(frame, collect(first));
  rig.sim.run();
  ASSERT_EQ(first.size(), 1u);

  rig.server.handle_frame(frame, collect(retry));  // retry after completion
  ASSERT_EQ(retry.size(), 1u);
  EXPECT_EQ(retry[0], first[0]);  // byte-exact replay, not a re-execution
  EXPECT_EQ(rig.server.stats().duplicate_replays, 1u);
  EXPECT_EQ(rig.server.stats().admitted, 1u);
  EXPECT_EQ(rig.server.stats().completed, 1u);
}

TEST(ServeServer, InFlightDuplicateCoalescesOntoOneExecution) {
  Rig rig;
  const std::string frame = encode_request(route_request(7));
  std::vector<std::string> first, retry;
  rig.server.handle_frame(frame, collect(first));
  rig.server.handle_frame(frame, collect(retry));  // retry while executing
  EXPECT_EQ(rig.server.stats().coalesced, 1u);

  rig.sim.run();
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(retry.size(), 1u);
  EXPECT_EQ(first[0], retry[0]);
  EXPECT_EQ(rig.server.stats().admitted, 1u);  // executed exactly once
  EXPECT_EQ(rig.server.stats().completed, 1u);
}

TEST(ServeServer, ResponsesLabelStalenessAgainstTheLiveEpoch) {
  Rig rig;
  rig.registry.note_live_event();
  rig.registry.note_live_event();
  rig.registry.note_live_event();

  std::vector<std::string> frames;
  rig.sim.schedule(5.0, [&] {
    rig.server.handle_frame(encode_request(route_request(1)),
                            collect(frames));
  });
  rig.sim.run();

  ASSERT_EQ(frames.size(), 1u);
  const Response r = decode_one(frames[0]);
  EXPECT_EQ(r.status, ResponseStatus::kOk);
  EXPECT_EQ(r.staleness_events, 3u);
  // Sealed at t = 0, completed at arrival + route service.
  EXPECT_DOUBLE_EQ(r.staleness_ms, 5.05);
}

TEST(ServeServer, IdenticalContentHitsTheCacheUnderANewId) {
  Rig rig;
  std::vector<std::string> first, second;
  rig.server.handle_frame(encode_request(route_request(1, 0, 4)),
                          collect(first));
  rig.server.handle_frame(encode_request(route_request(2, 0, 4)),
                          collect(second));
  rig.sim.run();

  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  const Response a = decode_one(first[0]);
  const Response b = decode_one(second[0]);
  EXPECT_FALSE(a.from_cache);
  EXPECT_TRUE(b.from_cache);
  EXPECT_EQ(a.result, b.result);
  EXPECT_EQ(rig.server.cache().hits(), 1u);
  EXPECT_EQ(rig.server.cache().misses(), 1u);
}

// ---- Checkpoints -------------------------------------------------------

/// Exercises the server across a seal with failed links, some completed
/// queries (one cached), and a live-epoch gap — checkpoint-worthy state.
std::string busy_checkpoint(Rig& rig) {
  LinkStateOverlay live(rig.topo);
  EXPECT_TRUE(live.fail(rig.topo.links_at_level(2)[0]));
  rig.registry.note_live_event();
  rig.registry.seal(live, 1.0);
  rig.registry.note_live_event();

  std::vector<std::string> frames;
  rig.server.handle_frame(encode_request(route_request(1, 0, 2)),
                          collect(frames));
  rig.server.handle_frame(encode_request(route_request(2, 0, 2)),
                          collect(frames));  // cache hit at completion
  Request what_if = route_request(3, 0, 1);
  what_if.kind = QueryKind::kWhatIf;
  what_if.fail_links = {rig.topo.links_at_level(1)[0].value()};
  rig.server.handle_frame(encode_request(what_if), collect(frames));
  rig.sim.run();
  EXPECT_EQ(frames.size(), 3u);
  EXPECT_EQ(rig.server.stats().completed, 3u);
  return rig.server.checkpoint();
}

TEST(ServeCheckpoint, KillAndResumeIsByteIdentical) {
  Rig original;
  const std::string cp = busy_checkpoint(original);

  Rig resumed;  // fresh process: empty registry, cache, dedup
  resumed.server.restore(cp);
  EXPECT_EQ(resumed.server.checkpoint(), cp);
  EXPECT_EQ(resumed.server.stats().resumes, 1u);
  EXPECT_EQ(resumed.registry.current().pinned->fingerprint,
            original.registry.current().pinned->fingerprint);
  EXPECT_EQ(resumed.server.cache().fingerprint(),
            original.server.cache().fingerprint());

  // A retry of a pre-crash id replays the exact pre-crash bytes.
  std::vector<std::string> replay;
  resumed.server.handle_frame(encode_request(route_request(1, 0, 2)),
                              collect(replay));
  ASSERT_EQ(replay.size(), 1u);
  EXPECT_EQ(decode_one(replay[0]).status, ResponseStatus::kOk);
  EXPECT_EQ(resumed.server.stats().duplicate_replays, 1u);

  // And the resumed server keeps answering new queries from the restored
  // snapshot, labeled with the same digest.
  std::vector<std::string> fresh;
  resumed.server.handle_frame(encode_request(route_request(50, 0, 3)),
                              collect(fresh));
  resumed.sim.run();
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(decode_one(fresh[0]).snapshot_digest,
            original.registry.current().pinned->fingerprint);
}

TEST(ServeCheckpoint, CorruptionIsRejectedBeforeAnyStateChanges) {
  Rig original;
  const std::string cp = busy_checkpoint(original);

  Rig victim;
  std::string bad_magic = cp;
  bad_magic[0] = 'B';
  EXPECT_THROW(victim.server.restore(bad_magic), PreconditionError);

  // Flip one digit of a stats line: the sealed fingerprint must catch it.
  std::string tampered = cp;
  const std::string needle = "received ";
  const std::size_t pos = tampered.find(needle) + needle.size();
  tampered[pos] = tampered[pos] == '9' ? '8' : '9';
  EXPECT_THROW(victim.server.restore(tampered), PreconditionError);

  EXPECT_THROW(victim.server.restore(cp.substr(0, cp.size() / 2)),
               PreconditionError);

  // The victim is untouched: a full restore still lands byte-identically.
  EXPECT_EQ(victim.server.stats().resumes, 0u);
  victim.server.restore(cp);
  EXPECT_EQ(victim.server.checkpoint(), cp);
}

// ---- Client ------------------------------------------------------------

TEST(ServeClient, GivesUpAfterTheRetryCapOnADeadChannel) {
  Rig rig;
  ClientOptions copts;
  copts.client_id = 3;
  copts.channel.drop_rate = 1.0;  // every frame dies on the wire
  Client client(rig.sim, rig.server, copts);
  client.submit(route_request(0));
  rig.sim.run();

  EXPECT_EQ(client.stats().submitted, 1u);
  EXPECT_EQ(client.stats().retransmits,
            static_cast<std::uint64_t>(kMaxClientRetries));
  EXPECT_EQ(client.stats().gave_up, 1u);
  ASSERT_EQ(client.outcomes().size(), 1u);
  EXPECT_FALSE(client.outcomes()[0].got_response);
  EXPECT_EQ(rig.server.stats().received, 0u);
}

TEST(ServeClient, RefusesARetryBudgetAboveTheModuleCap) {
  Rig rig;
  ClientOptions copts;
  copts.max_retries = kMaxClientRetries + 1;
  EXPECT_THROW(Client(rig.sim, rig.server, copts), PreconditionError);
}

TEST(ServeClient, RetriesThroughLossWithoutDoubleApplying) {
  Rig rig;
  ClientOptions copts;
  copts.client_id = 1;
  copts.campaign_seed = 11;
  copts.channel.drop_rate = 0.4;
  copts.channel.duplicate_rate = 0.1;
  Client client(rig.sim, rig.server, copts);

  const std::uint32_t hosts =
      static_cast<std::uint32_t>(rig.topo.num_hosts());
  const int n = 30;
  for (int i = 0; i < n; ++i) {
    const auto src = static_cast<std::uint32_t>(i) % hosts;
    client.submit(route_request(0, src, (src + 1) % hosts));
  }
  rig.sim.run();

  // Loss forced retries, yet the dedup table kept every id to at most one
  // execution: the server never admitted more than one query per id.
  EXPECT_GT(client.stats().retransmits, 0u);
  EXPECT_GT(client.stats().frames_sent, static_cast<std::uint64_t>(n));
  EXPECT_LE(rig.server.stats().admitted, static_cast<std::uint64_t>(n));
  EXPECT_EQ(rig.server.stats().completed, rig.server.stats().admitted);
  std::uint64_t answered = 0;
  for (const Outcome& outcome : client.outcomes()) {
    if (outcome.got_response) ++answered;
  }
  EXPECT_EQ(answered + client.stats().gave_up,
            static_cast<std::uint64_t>(n));
  EXPECT_GT(answered, 0u);
  EXPECT_EQ(client.stats().undecodable, 0u);
}

// ---- Stepwise chaos campaigns ------------------------------------------

TEST(ServeChaosCampaign, StepwiseDrainMatchesTheLegacyLoop) {
  const Topology topo = make_tree({0, 1, 0});
  ChaosOptions options;
  options.seed = 5;
  options.num_events = 12;
  options.check_flows = 64;
  options.check_every = 4;

  const ChaosOutcome legacy =
      run_chaos_campaign(ProtocolKind::kAnp, topo, options);

  fault::ChaosCampaign campaign(ProtocolKind::kAnp, topo, options);
  int steps = 0;
  while (campaign.advance()) ++steps;
  EXPECT_EQ(steps, options.num_events);
  EXPECT_EQ(campaign.actions_taken(), options.num_events);
  EXPECT_FALSE(campaign.finished());
  campaign.finish();
  EXPECT_TRUE(campaign.finished());
  campaign.finish();                   // idempotent
  EXPECT_FALSE(campaign.advance());    // and advance stays a no-op

  const ChaosOutcome& stepped = campaign.outcome();
  EXPECT_EQ(stepped.seed, legacy.seed);
  EXPECT_EQ(stepped.link_failures, legacy.link_failures);
  EXPECT_EQ(stepped.link_recoveries, legacy.link_recoveries);
  EXPECT_EQ(stepped.switch_crashes, legacy.switch_crashes);
  EXPECT_EQ(stepped.switch_recoveries, legacy.switch_recoveries);
  EXPECT_EQ(stepped.compound_runs, legacy.compound_runs);
  EXPECT_EQ(stepped.messages, legacy.messages);
  EXPECT_EQ(stepped.retransmits, legacy.retransmits);
  EXPECT_EQ(stepped.checks, legacy.checks);
  EXPECT_EQ(stepped.checked_flows, legacy.checked_flows);
  EXPECT_EQ(stepped.ground_truth_violations,
            legacy.ground_truth_violations);
  EXPECT_EQ(stepped.protocol_shortfall, legacy.protocol_shortfall);
  EXPECT_EQ(stepped.convergence_ms.count(), legacy.convergence_ms.count());
  EXPECT_EQ(stepped.convergence_ms.total(), legacy.convergence_ms.total());
  EXPECT_EQ(stepped.tables_restored, legacy.tables_restored);
  EXPECT_TRUE(stepped.tables_restored);
}

// ---- Serve under chaos -------------------------------------------------

ServeChaosOptions chaos_serve_options() {
  ServeChaosOptions options;
  options.chaos.seed = 5;
  options.chaos.num_events = 10;
  options.chaos.check_flows = 64;
  options.chaos.check_every = 5;
  options.num_queries = 150;
  options.num_clients = 3;
  options.query_interarrival_ms = 1.0;
  options.action_every_ms = 20.0;
  options.seal_every_actions = 2;
  options.checkpoint_every = 30;
  options.client.channel.drop_rate = 0.2;
  options.client.channel.duplicate_rate = 0.05;
  options.client.channel.jitter_ms = 0.3;
  return options;
}

TEST(ServeUnderChaos, EveryAnsweredLabelSurvivesThePostHocAudit) {
  const Topology topo = make_tree({0, 1, 0});
  const ServeChaosReport report =
      run_serve_under_chaos(ProtocolKind::kAnp, topo, chaos_serve_options());

  EXPECT_TRUE(report.passed()) << (report.audit_messages.empty()
                                       ? "chaos invariant failed"
                                       : report.audit_messages[0]);
  EXPECT_GT(report.answered, 0u);
  EXPECT_EQ(report.audited, report.answered + report.rejected_deadline +
                                report.rejected_malformed);
  EXPECT_EQ(report.audit_mismatches, 0u);
  EXPECT_EQ(report.rejected_malformed, 0u);
  // The channel actually misbehaved and the retry loop actually worked.
  EXPECT_GT(report.clients.retransmits, 0u);
  EXPECT_GT(report.seals, 1u);
  EXPECT_GT(report.checkpoints_cut, 0u);
  EXPECT_EQ(report.checkpoints.size(), report.checkpoints_cut);
  // Degraded-mode answers were genuinely stale at least once.
  EXPECT_GT(report.staleness_ms.count(), 0u);
  // Cache effectiveness is reported through the server's counters.
  EXPECT_EQ(report.cache_hits + report.cache_misses,
            report.server.completed);
}

TEST(ServeUnderChaos, ResumesByteIdenticallyFromEveryCheckpoint) {
  const Topology topo = make_tree({0, 1, 0});
  const ServeChaosReport report =
      run_serve_under_chaos(ProtocolKind::kAnp, topo, chaos_serve_options());
  ASSERT_GT(report.checkpoints.size(), 1u);

  for (std::size_t i = 0; i < report.checkpoints.size(); ++i) {
    const std::string& cp = report.checkpoints[i];
    Simulator sim;
    SnapshotRegistry registry(topo, DestGranularity::kEdge);
    Server server(sim, topo, registry);
    server.restore(cp);
    EXPECT_EQ(server.checkpoint(), cp) << "checkpoint " << i;
    EXPECT_EQ(server.stats().resumes, 1u);
  }
}

TEST(ServeUnderChaos, ReportFingerprintIsThreadCountInvariant) {
  const Topology topo = make_tree({0, 1, 0});
  ServeChaosOptions options = chaos_serve_options();
  options.num_queries = 80;  // trimmed: this test runs the campaign thrice

  parallel::set_num_threads(1);
  options.threads = 1;
  const ServeChaosReport base =
      run_serve_under_chaos(ProtocolKind::kAnp, topo, options);
  ASSERT_TRUE(base.passed());

  for (const int threads : {2, 4}) {
    parallel::set_num_threads(threads);
    options.threads = threads;
    const ServeChaosReport other =
        run_serve_under_chaos(ProtocolKind::kAnp, topo, options);
    EXPECT_EQ(other.fingerprint(), base.fingerprint())
        << "at " << threads << " threads";
    EXPECT_EQ(other.reply_stream_hash, base.reply_stream_hash);
    EXPECT_EQ(other.response_stream_hash, base.response_stream_hash);
  }
  parallel::set_num_threads(1);
}

// ---- Golden trace ------------------------------------------------------

ServeChaosOptions golden_serve_options() {
  ServeChaosOptions options;
  options.chaos.seed = 9;
  options.chaos.num_events = 6;
  options.chaos.check_flows = 32;
  options.chaos.check_every = 3;
  options.num_queries = 40;
  options.num_clients = 2;
  options.query_interarrival_ms = 2.0;
  options.action_every_ms = 25.0;
  options.seal_every_actions = 2;
  options.checkpoint_every = 15;
  options.client.channel.drop_rate = 0.15;
  options.client.channel.duplicate_rate = 0.05;
  return options;
}

std::string traced_serve_jsonl(int threads) {
  // Bounded ring, same discipline as the protocol goldens: eviction keeps
  // the newest records and stays deterministic.
  obs::ScopedObs scoped({.metrics = true, .trace = true,
                         .trace_capacity = 2048});
  parallel::set_num_threads(threads);
  ServeChaosOptions options = golden_serve_options();
  options.threads = threads;
  const Topology topo = make_tree({0, 1, 0});
  const ServeChaosReport report =
      run_serve_under_chaos(ProtocolKind::kAnp, topo, options);
  EXPECT_TRUE(report.passed());
  parallel::set_num_threads(1);
  return obs::tracer().to_jsonl();
}

TEST(ServeGolden, ChaosScenarioMatchesTheGoldenTrace) {
  EXPECT_TRUE(golden::matches_golden("serve_chaos.jsonl",
                                     traced_serve_jsonl(1)));
}

TEST(ServeGolden, TraceIsByteIdenticalAcrossThreadCounts) {
  const std::string base = traced_serve_jsonl(1);
  for (const int threads : {2, 4}) {
    EXPECT_EQ(traced_serve_jsonl(threads), base)
        << "at " << threads << " threads";
  }
}

}  // namespace
}  // namespace aspen
