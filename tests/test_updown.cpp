// Tests for global up*/down* route computation.
#include <gtest/gtest.h>

#include "src/aspen/generator.h"
#include "src/routing/updown.h"
#include "src/util/status.h"

namespace aspen {
namespace {

TEST(Updown, IntactFatTreeCosts) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  const RoutingState routes = compute_updown_routes(topo);

  // At an edge switch: own dest costs 0; same-pod edge costs 2 (up, down);
  // remote edge costs 4.
  const SwitchId edge0 = topo.switch_at(1, 0);
  EXPECT_EQ(routes.table(edge0).entry(0).cost, 0);
  EXPECT_EQ(routes.table(edge0).entry(1).cost, 2);  // sibling in pod 0
  EXPECT_EQ(routes.table(edge0).entry(7).cost, 4);  // farthest pod

  // At a core: every edge costs 2 (straight down).
  const SwitchId core = topo.switch_at(3, 0);
  for (std::uint64_t e = 0; e < topo.params().S; ++e) {
    EXPECT_EQ(routes.table(core).entry(e).cost, 2);
  }
}

TEST(Updown, EcmpSetSizes) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  const RoutingState routes = compute_updown_routes(topo);
  const SwitchId edge0 = topo.switch_at(1, 0);
  // Climbing anywhere: both uplinks are equal-cost options.
  EXPECT_EQ(routes.table(edge0).next_hops(7).size(), 2u);
  // An agg descending to an edge in its pod: single link.
  const SwitchId agg = topo.switch_at(2, 0);
  EXPECT_EQ(routes.table(agg).next_hops(0).size(), 1u);
  // An agg climbing to a remote pod: both its core uplinks.
  EXPECT_EQ(routes.table(agg).next_hops(7).size(), 2u);
}

TEST(Updown, EveryDestinationReachableInIntactTree) {
  for (const auto& ftv : std::vector<std::vector<int>>{
           {0, 0}, {1, 0}, {0, 0, 0}, {1, 0, 0}, {0, 1, 0}}) {
    const int n = static_cast<int>(ftv.size()) + 1;
    const Topology topo =
        Topology::build(generate_tree(n, 4, FaultToleranceVector(ftv)));
    const RoutingState routes = compute_updown_routes(topo);
    SCOPED_TRACE(topo.describe());
    for (std::uint32_t v = 0; v < topo.num_switches(); ++v) {
      const RoutingTables::TableView table = routes.tables[v];
      for (std::uint64_t e = 0; e < table.size(); ++e) {
        const auto& entry = table.entry(e);
        EXPECT_TRUE(entry.reachable() || entry.cost == 0)
            << to_string(SwitchId{v}) << " → edge " << e;
      }
    }
  }
}

TEST(Updown, CostsDecreaseAlongNextHops) {
  // Loop-freedom: every next hop strictly reduces the remaining cost.
  const Topology topo =
      Topology::build(generate_tree(4, 4, FaultToleranceVector{1, 0, 0}));
  const RoutingState routes = compute_updown_routes(topo);
  for (std::uint32_t v = 0; v < topo.num_switches(); ++v) {
    for (std::uint64_t e = 0; e < topo.params().S; ++e) {
      const auto& entry = routes.tables[v].entry(e);
      for (const auto& nb : routes.tables[v].next_hops(e)) {
        const auto& next_entry =
            routes.table(topo.switch_of(nb.node)).entry(e);
        ASSERT_TRUE(next_entry.cost == 0 || next_entry.reachable());
        EXPECT_EQ(next_entry.cost, entry.cost - 1);
      }
    }
  }
}

TEST(Updown, FailureRemovesOnlyAffectedRoutes) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  LinkStateOverlay overlay(topo);

  // Fail the (single) link from agg (2,0) down to edge 0.
  const SwitchId agg = topo.switch_at(2, 0);
  const SwitchId edge0 = topo.switch_at(1, 0);
  const LinkId link = topo.find_link(agg, edge0);
  ASSERT_TRUE(link.valid());
  overlay.fail(link);

  const RoutingState routes = compute_updown_routes(topo, overlay);
  // Up*/down* semantics make agg genuinely unable to reach edge 0: its own
  // cores' only descent to edge 0 ran through the failed link, and a valid
  // path may never come back up.  (This is exactly why the failure "dooms"
  // packets in §2 — there is no legal detour from inside the dead region.)
  EXPECT_FALSE(routes.table(agg).entry(0).reachable());
  // Cores attached to the *other* pod member (odd indices under standard
  // striping) still reach edge 0.
  const SwitchId core1 = topo.switch_at(3, 1);
  EXPECT_EQ(routes.table(core1).entry(0).cost, 2);
  // The pod sibling still reaches edge 0 directly.
  const SwitchId sibling = topo.switch_at(2, 1);
  EXPECT_EQ(routes.table(sibling).entry(0).cost, 1);
  // Remote destinations unaffected at agg.
  EXPECT_EQ(routes.table(agg).entry(7).cost, 3);
}

TEST(Updown, DisconnectionYieldsUnreachableEntries) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  LinkStateOverlay overlay(topo);
  // Sever both uplinks of edge 0: nobody can route to it (down paths all
  // start above it), and it cannot route out.
  const SwitchId edge0 = topo.switch_at(1, 0);
  for (const auto& nb : topo.up_neighbors(edge0)) overlay.fail(nb.link);

  const RoutingState routes = compute_updown_routes(topo, overlay);
  const SwitchId core = topo.switch_at(3, 0);
  EXPECT_FALSE(routes.table(core).entry(0).reachable());
  EXPECT_EQ(routes.table(core).entry(0).cost,
            RoutingTables::kUnreachable);
  EXPECT_FALSE(routes.table(edge0).entry(5).reachable());
}

TEST(Updown, ChangedTableCountForCoreFailure) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  const RoutingState before = compute_updown_routes(topo);

  LinkStateOverlay overlay(topo);
  // Fail core 0 → agg (pod 0, member 0).
  const SwitchId core = topo.switch_at(3, 0);
  const SwitchId agg = topo.switch_at(2, 0);
  const LinkId link = topo.find_link(core, agg);
  ASSERT_TRUE(link.valid());
  overlay.fail(link);
  const RoutingState after = compute_updown_routes(topo, overlay);

  const std::uint64_t changed = switches_with_changed_tables(before, after);
  // The endpoints change; aggs in other pods drop the dead core from their
  // ECMP sets toward pod 0; edges keep their (agg-level) choices.
  EXPECT_GE(changed, 2u);
  EXPECT_LT(changed, topo.num_switches());
  EXPECT_FALSE(before.tables[core.value()] == after.tables[core.value()]);
  EXPECT_FALSE(before.tables[agg.value()] == after.tables[agg.value()]);
  // Edge switches in remote pods are untouched.
  EXPECT_TRUE(before.tables[topo.switch_at(1, 7).value()] ==
              after.tables[topo.switch_at(1, 7).value()]);
}

TEST(Updown, ChangedTablesRequiresSameShape) {
  const Topology a = Topology::build(fat_tree(3, 4));
  const Topology b = Topology::build(fat_tree(4, 4));
  const RoutingState ra = compute_updown_routes(a);
  const RoutingState rb = compute_updown_routes(b);
  EXPECT_THROW((void)switches_with_changed_tables(ra, rb), PreconditionError);
}

TEST(Updown, AspenRedundancyWidensDownEcmp) {
  // FTV <0,1,0>: L3 switches have two links into their child pod, so their
  // descending entries hold two next hops where a fat tree has one.
  const Topology topo =
      Topology::build(generate_tree(4, 4, FaultToleranceVector{0, 1, 0}));
  const RoutingState routes = compute_updown_routes(topo);
  const SwitchId l3 = topo.switch_at(3, 0);
  bool found_double = false;
  for (std::uint64_t e = 0; e < topo.params().S; ++e) {
    const auto& entry = routes.table(l3).entry(e);
    if (entry.cost == 2 && entry.hop_count == 2) found_double = true;
  }
  EXPECT_TRUE(found_double);
}

}  // namespace
}  // namespace aspen
