// Experiment T1 — regenerates the Figure 3(a) table: every possible
// 4-level, 6-port Aspen tree with its fault tolerance, size and
// hierarchical-aggregation properties.
//
// Paper reference values (CoNEXT'13, Fig. 3(a)):
//   FTV      DCC  S   switches hosts  aggregation(L4,L3,L2,overall)
//   <0,0,0>   1   54  189      162    3 3 3 27
//   <0,0,2>   3   18   63       54    3 3 1  9
//   …
//   <2,2,2>  27    2    7        6    1 1 1  1
#include <cstdio>

#include "src/aspen/enumerate.h"
#include "src/util/table.h"

namespace {

void print_figure3a() {
  using namespace aspen;
  TextTable table({"FTV", "DCC", "S", "Switches", "Hosts", "Agg L4",
                   "Agg L3", "Agg L2", "Agg overall"});
  for (const TreeParams& t : enumerate_trees(4, 6)) {
    table.add_row({
        t.ftv().to_string(),
        std::to_string(t.dcc()),
        std::to_string(t.S),
        std::to_string(t.total_switches()),
        std::to_string(t.num_hosts()),
        format_double(t.aggregation_at_level(4), 0),
        format_double(t.aggregation_at_level(3), 0),
        format_double(t.aggregation_at_level(2), 0),
        format_double(t.overall_aggregation(), 0),
    });
  }
  std::printf(
      "== Figure 3(a): all possible 4-level, 6-port Aspen trees ==\n%s\n",
      table.to_string().c_str());
}

void print_larger_catalog() {
  using namespace aspen;
  // Bonus: the same catalog for a deployment-sized shape, demonstrating
  // that enumeration scales beyond the paper's illustrative example.
  TextTable table({"FTV", "DCC", "Hosts", "Switches", "Avg agg"});
  std::size_t rows = 0;
  for (const TreeParams& t : enumerate_trees(3, 16)) {
    table.add_row({t.ftv().to_string(), std::to_string(t.dcc()),
                   std::to_string(t.num_hosts()),
                   std::to_string(t.total_switches()),
                   format_double(t.overall_aggregation(), 0)});
    ++rows;
  }
  std::printf("== Catalog: all %zu valid 3-level, 16-port Aspen trees ==\n%s\n",
              rows, table.to_string().c_str());
}

}  // namespace

int main() {
  print_figure3a();
  print_larger_catalog();
  return 0;
}
