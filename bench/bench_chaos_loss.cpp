// Experiment X8 (extension; tentpole) — control-plane loss-rate sweep.
//
// The paper's reaction protocols assume notifications and LSAs always
// arrive.  This sweep drops control messages with probability p (seeded,
// deterministic), turns on the ack/retransmit transport, and measures what
// reliability costs each protocol: convergence time and message overhead
// (including retransmissions) vs. drop rate, plus whether the lossy run
// still produced byte-identical forwarding tables to a lossless one.
//
// Output is JSON (one document on stdout) so downstream plotting needs no
// parser beyond the standard library.  A second section runs a full mixed
// chaos campaign per protocol at 10% drop as an end-to-end robustness
// check — see docs/CHAOS.md.
#include <cstdio>
#include <string>
#include <vector>

#include "src/obs/obs.h"
#include "src/aspen/generator.h"
#include "src/fault/chaos.h"
#include "src/proto/experiment.h"
#include "src/routing/updown.h"
#include "src/sim/stats.h"

namespace {

using namespace aspen;

struct SweepPoint {
  ProtocolKind kind;
  double drop_rate = 0.0;
  std::uint64_t runs = 0;
  bool identical_tables = true;  ///< every lossy run matched lossless
  std::uint64_t gave_up = 0;
  Summary convergence_ms;
  Summary messages;
  Summary retransmits;
  Summary acks;
  Summary duplicates_dropped;
  Summary channel_dropped;
};

SweepPoint run_point(ProtocolKind kind, const Topology& topo,
                     std::span<const LinkId> victims, double drop_rate) {
  SweepPoint point;
  point.kind = kind;
  point.drop_rate = drop_rate;

  const AnpOptions anp{.notify_children = true, .adjacency_resync = false};
  for (const LinkId victim : victims) {
    auto lossless = make_protocol(kind, topo, DelayModel{}, anp);
    (void)lossless->simulate_link_failure(victim);

    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      DelayModel delays;
      delays.channel.drop_rate = drop_rate;
      delays.channel.duplicate_rate = drop_rate / 4.0;
      delays.channel.jitter_ms = 0.5;
      delays.channel.seed = seed;
      delays.channel.reliable = true;
      auto lossy = make_protocol(kind, topo, delays, anp);
      const FailureReport report = lossy->simulate_link_failure(victim);

      ++point.runs;
      point.gave_up += report.gave_up;
      point.convergence_ms.add(report.convergence_time_ms);
      point.messages.add(static_cast<double>(report.messages_sent));
      point.retransmits.add(static_cast<double>(report.retransmits));
      point.acks.add(static_cast<double>(report.acks_sent));
      point.duplicates_dropped.add(
          static_cast<double>(report.duplicates_dropped));
      point.channel_dropped.add(static_cast<double>(report.channel_dropped));
      if (switches_with_changed_tables(lossless->tables(), lossy->tables()) !=
          0) {
        point.identical_tables = false;
      }
    }
  }
  return point;
}

void print_summary(const char* key, const Summary& s, bool trailing_comma) {
  std::printf(
      "        \"%s\": {\"mean\": %.3f, \"min\": %.3f, \"max\": %.3f}%s\n",
      key, s.mean(), s.min(), s.max(), trailing_comma ? "," : "");
}

void print_point(const SweepPoint& point, bool trailing_comma) {
  std::printf("      {\n");
  std::printf("        \"protocol\": \"%s\",\n", to_cstring(point.kind));
  std::printf("        \"drop_rate\": %.2f,\n", point.drop_rate);
  std::printf("        \"runs\": %llu,\n",
              static_cast<unsigned long long>(point.runs));
  std::printf("        \"identical_tables\": %s,\n",
              point.identical_tables ? "true" : "false");
  std::printf("        \"gave_up\": %llu,\n",
              static_cast<unsigned long long>(point.gave_up));
  print_summary("convergence_ms", point.convergence_ms, true);
  print_summary("messages", point.messages, true);
  print_summary("retransmits", point.retransmits, true);
  print_summary("acks", point.acks, true);
  print_summary("duplicates_dropped", point.duplicates_dropped, true);
  print_summary("channel_dropped", point.channel_dropped, false);
  std::printf("      }%s\n", trailing_comma ? "," : "");
}

void print_campaign(ProtocolKind kind, const ChaosOutcome& outcome,
                    bool trailing_comma) {
  std::printf("      {\n");
  std::printf("        \"protocol\": \"%s\",\n", to_cstring(kind));
  std::printf("        \"link_failures\": %llu,\n",
              static_cast<unsigned long long>(outcome.link_failures));
  std::printf("        \"switch_crashes\": %llu,\n",
              static_cast<unsigned long long>(outcome.switch_crashes));
  std::printf("        \"compound_runs\": %llu,\n",
              static_cast<unsigned long long>(outcome.compound_runs));
  std::printf("        \"messages\": %llu,\n",
              static_cast<unsigned long long>(outcome.messages));
  std::printf("        \"retransmits\": %llu,\n",
              static_cast<unsigned long long>(outcome.retransmits));
  std::printf("        \"channel_dropped\": %llu,\n",
              static_cast<unsigned long long>(outcome.channel_dropped));
  std::printf("        \"checked_flows\": %llu,\n",
              static_cast<unsigned long long>(outcome.checked_flows));
  std::printf("        \"ground_truth_violations\": %llu,\n",
              static_cast<unsigned long long>(outcome.ground_truth_violations));
  std::printf("        \"protocol_shortfall\": %llu,\n",
              static_cast<unsigned long long>(outcome.protocol_shortfall));
  std::printf("        \"all_quiesced\": %s,\n",
              outcome.all_quiesced ? "true" : "false");
  std::printf("        \"tables_restored\": %s\n",
              outcome.tables_restored ? "true" : "false");
  std::printf("      }%s\n", trailing_comma ? "," : "");
}

}  // namespace

int main() {
  using namespace aspen;

  obs::ObsConfig obs_config;
  obs_config.metrics = true;
  obs::configure(obs_config);

  const int n = 4;
  const int k = 4;
  const Topology topo =
      Topology::build(generate_tree(n, k, FaultToleranceVector({0, 1, 0})));

  // A victim per inter-switch level exercises both short (top-of-tree) and
  // long (aggregation) notification paths.
  std::vector<LinkId> victims;
  for (Level level = 2; level <= topo.levels(); ++level) {
    victims.push_back(topo.links_at_level(level)[0]);
  }

  const std::vector<double> drop_rates{0.0, 0.05, 0.10, 0.20};

  std::printf("{\n");
  std::printf("  \"experiment\": \"chaos_loss_sweep\",\n");
  std::printf("  \"topology\": {\"levels\": %d, \"k\": %d, \"ftv\": "
              "\"<0,1,0>\", \"hosts\": %llu},\n",
              n, k, static_cast<unsigned long long>(topo.num_hosts()));
  std::printf("  \"sweep\": [\n");
  for (std::size_t p = 0; p < 2; ++p) {
    const ProtocolKind kind = p == 0 ? ProtocolKind::kLsp : ProtocolKind::kAnp;
    for (std::size_t d = 0; d < drop_rates.size(); ++d) {
      const SweepPoint point = run_point(kind, topo, victims, drop_rates[d]);
      print_point(point, p + 1 < 2 || d + 1 < drop_rates.size());
    }
  }
  std::printf("  ],\n");

  std::printf("  \"campaigns\": [\n");
  for (std::size_t p = 0; p < 2; ++p) {
    const ProtocolKind kind = p == 0 ? ProtocolKind::kLsp : ProtocolKind::kAnp;
    ChaosOptions options;
    options.seed = 2026;
    options.num_events = 60;
    options.delays.channel.drop_rate = 0.10;
    options.delays.channel.duplicate_rate = 0.02;
    options.delays.channel.jitter_ms = 0.5;
    options.delays.channel.seed = 11;
    options.delays.channel.reliable = true;
    print_campaign(kind, run_chaos_campaign(kind, topo, options), p + 1 < 2);
  }
  std::printf("  ],\n");
  std::printf("  \"metrics\":\n%s\n", obs::metrics().to_json(2).c_str());
  std::printf("}\n");
  return 0;
}
