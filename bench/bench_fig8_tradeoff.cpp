// Experiment F8 — regenerates Figure 8: convergence time versus hosts
// removed for every 4-level, 6-port Aspen tree, as percent of maximum
// (Max Hops = 5, Max Hosts = 162).
#include <cstdio>

#include "src/analysis/convergence.h"
#include "src/analysis/scalability.h"
#include "src/aspen/generator.h"
#include "src/util/table.h"

int main() {
  using namespace aspen;

  const int n = 4;
  const int k = 6;
  const int max_hops = max_update_distance(n);
  const std::uint64_t max_hosts = fat_tree(n, k).num_hosts();

  std::printf(
      "== Figure 8: convergence vs scalability, n=4, k=6 Aspen trees ==\n"
      "Max Hops=%d  Max Hosts=%lu\n\n",
      max_hops, static_cast<unsigned long>(max_hosts));

  auto points = scalability_tradeoff(n, k);
  sort_for_display(points);

  TextTable table({"FTV", "Avg conv (hops)", "Conv % of max", "Hosts",
                   "Hosts removed", "Removed % of max"});
  for (const TradeoffPoint& p : points) {
    table.add_row({
        p.ftv.to_string(),
        format_double(p.average_convergence_hops, 2),
        format_double(p.convergence_percent(max_hops), 1) + "%",
        std::to_string(p.hosts),
        std::to_string(p.hosts_removed),
        format_double(p.removed_percent(max_hosts), 1) + "%",
    });
  }
  std::printf("%s\n", table.to_string().c_str());

  // The figure's paired bars, as ASCII.
  std::printf("convergence time (#) vs hosts removed (*), %% of max\n");
  for (const TradeoffPoint& p : points) {
    std::printf("%-9s |%-40s| conv %5.1f%%\n", p.ftv.to_string().c_str(),
                ascii_bar(p.convergence_percent(max_hops), 100.0).c_str(),
                p.convergence_percent(max_hops));
    std::printf("%-9s |%-40s| lost %5.1f%%\n", "",
                std::string(static_cast<std::size_t>(
                                p.removed_percent(max_hosts) * 0.4),
                            '*')
                    .c_str(),
                p.removed_percent(max_hosts));
  }
  return 0;
}
