// Experiment F9 — regenerates Figure 9: the convergence-versus-scalability
// tradeoff at data-center scale.
//   (a) n=5, k=16 Aspen trees (Max Hops=7, Max Hosts=65,536)
//   (b) n=3, k=64 Aspen trees (Max Hops=3, Max Hosts=65,536)
// Duplicate [host count, convergence time] pairs are collapsed, as in the
// paper ("we collapsed all such duplicates into single entries").
#include <cstdio>

#include "src/analysis/convergence.h"
#include "src/analysis/scalability.h"
#include "src/aspen/generator.h"
#include "src/util/table.h"

namespace {

void print_series(int n, int k, const char* figure) {
  using namespace aspen;
  const int max_hops = max_update_distance(n);
  const std::uint64_t max_hosts = fat_tree(n, k).num_hosts();
  auto points = collapse_duplicates(scalability_tradeoff(n, k));

  std::printf(
      "== Figure %s: n=%d, k=%d Aspen trees ==\nMax Hops=%d  Max "
      "Hosts=%lu  (%zu distinct [hosts, convergence] points)\n\n",
      figure, n, k, max_hops, static_cast<unsigned long>(max_hosts),
      points.size());

  TextTable table({"Example FTV", "Conv % of max", "Hosts removed % of max",
                   "Hosts", "Avg hops"});
  for (const TradeoffPoint& p : points) {
    table.add_row({
        p.ftv.to_string(),
        format_double(p.convergence_percent(max_hops), 1) + "%",
        format_double(p.removed_percent(max_hosts), 1) + "%",
        std::to_string(p.hosts),
        format_double(p.average_convergence_hops, 2),
    });
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main() {
  print_series(5, 16, "9(a)");
  print_series(3, 64, "9(b)");
  return 0;
}
