// Experiment X9 (extension; tentpole) — detection latency vs probe cost.
//
// The paper charges zero time between a link dying and its endpoints
// reacting.  A BFD-style detector makes that time explicit: N-of-M lost
// probes confirm a failure, so the confirm latency scales with the probe
// interval and — on gray links — inversely with the loss rate.  This bench
// sweeps probe interval × gray-loss rate, then runs the full pipeline
// (detect → react) for both protocols so the vulnerability window can be
// read as true loss-inducing time, and finally measures what flap damping
// buys when a link thrashes.
//
// Output is JSON (one document on stdout), bench_chaos_loss.cpp idiom.
// The trailing "overlay_lookup" section is a memory-layout micro-benchmark:
// the flat LinkStateOverlay (liveness bitset + degraded bitset + sorted
// payload vectors) against the std::map layout it replaced, probed the way
// the data plane probes it — loss_now() on every link — at two gray
// densities.
#include <chrono>
#include <cstdio>
#include <map>
#include <vector>

#include "src/obs/obs.h"
#include "src/aspen/generator.h"
#include "src/fault/detector.h"
#include "src/proto/experiment.h"
#include "src/topo/link_state.h"

namespace {

using namespace aspen;

constexpr SimTime kSweepHorizonMs = 10'000.0;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             // aspen-lint: allow(wall-clock) -- benchmark harness timing; measures host speed and never feeds a simulated result
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Reference overlay from before the flat layout: one ordered map keyed by
/// link id, absent == clean.  Probing it costs a pointer chase per packet.
double map_loss_now(const std::map<std::uint32_t, LinkHealthState>& states,
                    std::uint32_t id) {
  const auto it = states.find(id);
  if (it == states.end()) return 0.0;
  if (it->second.health == LinkHealth::kDown) return 1.0;
  if (it->second.health == LinkHealth::kGray) return it->second.loss_rate;
  return 0.0;
}

void print_overlay_lookup(const Topology& topo, double gray_fraction,
                          bool trailing_comma) {
  LinkStateOverlay overlay(topo);
  std::map<std::uint32_t, LinkHealthState> reference;
  const std::uint32_t links = static_cast<std::uint32_t>(topo.num_links());
  const std::uint32_t stride =
      static_cast<std::uint32_t>(1.0 / gray_fraction);
  for (std::uint32_t id = 0; id < links; id += stride) {
    overlay.set_gray(LinkId{id}, 0.3);
    LinkHealthState s;
    s.health = LinkHealth::kGray;
    s.loss_rate = 0.3;
    reference.emplace(id, s);
  }

  constexpr int kIters = 200;
  double flat_sum = 0.0;
  const double t_flat = now_ms();
  for (int r = 0; r < kIters; ++r) {
    for (std::uint32_t id = 0; id < links; ++id) {
      flat_sum += overlay.loss_now(LinkId{id}, 5.0);
    }
  }
  const double flat_ms = now_ms() - t_flat;

  double map_sum = 0.0;
  const double t_map = now_ms();
  for (int r = 0; r < kIters; ++r) {
    for (std::uint32_t id = 0; id < links; ++id) {
      map_sum += map_loss_now(reference, id);
    }
  }
  const double map_ms = now_ms() - t_map;

  const double probes =
      static_cast<double>(links) * static_cast<double>(kIters);
  std::printf("    {\n");
  std::printf("      \"gray_fraction\": %.2f,\n", gray_fraction);
  std::printf("      \"links\": %u,\n", links);
  std::printf("      \"degraded\": %llu,\n",
              static_cast<unsigned long long>(overlay.num_degraded()));
  std::printf("      \"probes\": %.0f,\n", probes);
  std::printf("      \"flat_ms\": %.3f,\n", flat_ms);
  std::printf("      \"map_ms\": %.3f,\n", map_ms);
  std::printf("      \"flat_probes_per_s\": %.0f,\n",
              probes / (flat_ms / 1000.0));
  std::printf("      \"speedup_vs_map\": %.2f,\n", map_ms / flat_ms);
  std::printf("      \"sums_agree\": %s\n",
              flat_sum == map_sum ? "true" : "false");
  std::printf("    }%s\n", trailing_comma ? "," : "");
}

void print_sweep_point(LinkId link, const Topology& topo, double interval,
                       double loss, bool trailing_comma) {
  fault::DetectorOptions options;
  options.probe_interval_ms = interval;
  LinkHealthState fault_state;
  fault_state.health = LinkHealth::kGray;
  fault_state.loss_rate = loss;
  const fault::DetectionOutcome det = fault::measure_detection(
      topo, link, fault_state, options, kSweepHorizonMs);
  std::printf("      {\n");
  std::printf("        \"probe_interval_ms\": %.1f,\n", interval);
  std::printf("        \"gray_loss\": %.2f,\n", loss);
  std::printf("        \"confirm_bound_ms\": %.1f,\n",
              options.confirm_bound_ms());
  std::printf("        \"suspect_ms\": %.3f,\n", det.suspect_latency_ms);
  std::printf("        \"confirm_ms\": %.3f,\n", det.confirm_latency_ms);
  std::printf("        \"confirmed\": %s,\n",
              det.confirmed() ? "true" : "false");
  std::printf("        \"probes_sent\": %llu,\n",
              static_cast<unsigned long long>(det.stats.probes_sent));
  std::printf("        \"probes_lost\": %llu\n",
              static_cast<unsigned long long>(det.stats.probes_lost));
  std::printf("      }%s\n", trailing_comma ? "," : "");
}

void print_pipeline(ProtocolKind kind, const Topology& topo, LinkId link,
                    double loss, bool trailing_comma) {
  fault::DetectorOptions options;
  LinkHealthState fault_state;
  fault_state.health = LinkHealth::kGray;
  fault_state.loss_rate = loss;
  const fault::DetectedFailureResult run =
      fault::run_detected_failure(kind, topo, link, fault_state, options);
  std::printf("      {\n");
  std::printf("        \"protocol\": \"%s\",\n", to_cstring(kind));
  std::printf("        \"gray_loss\": %.2f,\n", loss);
  std::printf("        \"detect_ms\": %.3f,\n",
              run.detection.confirm_latency_ms);
  std::printf("        \"react_ms\": %.3f,\n",
              run.reaction.convergence_time_ms - run.reaction.detection_ms);
  std::printf("        \"loss_inducing_ms\": %.3f,\n",
              run.reaction.convergence_time_ms);
  std::printf("        \"messages\": %llu\n",
              static_cast<unsigned long long>(run.reaction.messages_sent));
  std::printf("      }%s\n", trailing_comma ? "," : "");
}

void print_flap(ProtocolKind kind, const Topology& topo, LinkId link,
                bool damped, bool trailing_comma) {
  fault::DetectorOptions options;
  options.damping.enabled = damped;
  const fault::FlapScenarioResult flap = fault::run_flap_scenario(
      kind, topo, link, /*period_ms=*/400.0, /*duty=*/0.5, /*cycles=*/10,
      options);
  std::printf("      {\n");
  std::printf("        \"protocol\": \"%s\",\n", to_cstring(kind));
  std::printf("        \"damping\": %s,\n", damped ? "true" : "false");
  std::printf("        \"confirmed_transitions\": %llu,\n",
              static_cast<unsigned long long>(flap.confirmed_transitions));
  std::printf("        \"notifications\": %llu,\n",
              static_cast<unsigned long long>(flap.notifications));
  std::printf("        \"suppressed_transitions\": %llu,\n",
              static_cast<unsigned long long>(flap.suppressed_transitions));
  std::printf("        \"notification_bound\": %d,\n",
              flap.notification_bound);
  std::printf("        \"table_changes\": %llu,\n",
              static_cast<unsigned long long>(flap.table_changes));
  std::printf("        \"messages\": %llu,\n",
              static_cast<unsigned long long>(flap.messages));
  std::printf("        \"reaction_time_ms\": %.3f,\n", flap.reaction_time_ms);
  std::printf("        \"audit_violations\": %llu,\n",
              static_cast<unsigned long long>(flap.audit.findings.size()));
  std::printf("        \"tables_restored\": %s\n",
              flap.tables_restored ? "true" : "false");
  std::printf("      }%s\n", trailing_comma ? "," : "");
}

}  // namespace

int main() {
  using namespace aspen;

  obs::ObsConfig obs_config;
  obs_config.metrics = true;
  obs::configure(obs_config);

  const int n = 3;
  const int k = 4;
  const Topology topo =
      Topology::build(generate_tree(n, k, FaultToleranceVector({1, 0})));
  const LinkId link = topo.links_at_level(2)[0];
  const fault::DetectorOptions defaults;

  std::printf("{\n");
  std::printf("  \"experiment\": \"detection_latency\",\n");
  std::printf("  \"topology\": {\"levels\": %d, \"k\": %d, \"ftv\": "
              "\"<1,0>\", \"hosts\": %llu},\n",
              n, k, static_cast<unsigned long long>(topo.num_hosts()));
  std::printf("  \"detector\": {\"seed\": %llu, \"window\": %d, "
              "\"loss_threshold\": %d, \"recovery_threshold\": %d},\n",
              static_cast<unsigned long long>(defaults.seed),
              defaults.window, defaults.loss_threshold,
              defaults.recovery_threshold);

  std::printf("  \"sweep\": [\n");
  const std::vector<double> intervals{5.0, 10.0, 20.0, 50.0};
  const std::vector<double> losses{0.1, 0.3, 0.5, 0.9};
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    for (std::size_t l = 0; l < losses.size(); ++l) {
      print_sweep_point(link, topo, intervals[i], losses[l],
                        i + 1 < intervals.size() || l + 1 < losses.size());
    }
  }
  std::printf("  ],\n");

  std::printf("  \"pipeline\": [\n");
  print_pipeline(ProtocolKind::kLsp, topo, link, 0.3, true);
  print_pipeline(ProtocolKind::kAnp, topo, link, 0.3, false);
  std::printf("  ],\n");

  std::printf("  \"flapping\": [\n");
  print_flap(ProtocolKind::kAnp, topo, link, /*damped=*/true, true);
  print_flap(ProtocolKind::kAnp, topo, link, /*damped=*/false, true);
  print_flap(ProtocolKind::kLsp, topo, link, /*damped=*/true, true);
  print_flap(ProtocolKind::kLsp, topo, link, /*damped=*/false, false);
  std::printf("  ],\n");

  // Overlay layout micro-benchmark on a tree big enough that the link
  // array outruns L2: n=4, k=16 carries 32k links.
  const Topology big = Topology::build(fat_tree(4, 16));
  std::printf("  \"overlay_lookup\": [\n");
  print_overlay_lookup(big, 0.1, true);
  print_overlay_lookup(big, 0.5, false);
  std::printf("  ],\n");
  std::printf("  \"metrics\":\n%s\n", obs::metrics().to_json(2).c_str());
  std::printf("}\n");
  return 0;
}
