// Experiment C2 — the paper's §1 motivation: "a link failure at the top
// level of a 3-level, 64-port fat tree can logically disconnect as many as
// 1,024, or 1.5%, of the topology's hosts."
//
// We build the full 65,536-host, 64-port, 3-level fat tree (196,608 links —
// §1 footnote 1), fail one top-level link, and walk sampled flows using the
// stale (pre-failure) routing state every switch still holds: destination
// hosts in the cut pod lose the flows that hash through the dead core.
#include <cstdio>
#include <cstring>

#include <limits>
#include <span>

#include "src/aspen/generator.h"
#include "src/routing/delta.h"
#include "src/routing/packet_walk.h"
#include "src/routing/reachability.h"
#include "src/routing/updown.h"
#include "src/topo/topology.h"
#include "src/util/rng.h"

int main(int argc, char** argv) {
  using namespace aspen;

  bool self_check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--self-check") == 0) self_check = true;
  }

  const TreeParams params = fat_tree(3, 64);
  std::printf("building 3-level, 64-port fat tree: %lu hosts, %lu links\n",
              static_cast<unsigned long>(params.num_hosts()),
              static_cast<unsigned long>(params.total_links()));
  const Topology topo = Topology::build(params);
  const StructuralRouter stale(topo);  // the not-yet-reconverged fabric

  // Fail one core→aggregation link.
  const SwitchId core = topo.switch_at(3, 0);
  const auto& victim = topo.down_neighbors(core)[0];
  const SwitchId agg = topo.switch_of(victim.node);
  LinkStateOverlay actual(topo);
  actual.fail(victim.link);

  // The logically disconnectable set: every host under the agg's pod.
  const PodId pod = topo.pod_of(agg);
  const std::uint64_t half_k = static_cast<std::uint64_t>(params.k) / 2;
  const std::uint64_t pod_hosts = half_k * half_k;  // (k/2)^2 = 1,024
  std::printf(
      "failed link: %s -> %s (top level, pod %u)\n"
      "hosts in the destination pod: %lu = %.2f%% of all hosts "
      "(paper: 1,024 = 1.5%%)\n\n",
      to_string(core).c_str(), to_string(agg).c_str(), pod.value(),
      static_cast<unsigned long>(pod_hosts),
      100.0 * static_cast<double>(pod_hosts) /
          static_cast<double>(params.num_hosts()));

  // Sampled random flows across the whole fabric.
  Rng rng(2026);
  const ReachabilityStats sample =
      measure_sampled(topo, stale, actual, 200'000, rng);
  std::printf(
      "random flows: %lu walked, %lu dropped (%.3f%%), %lu distinct "
      "destination hosts affected\n",
      static_cast<unsigned long>(sample.flows),
      static_cast<unsigned long>(sample.dropped),
      100.0 * static_cast<double>(sample.dropped) /
          static_cast<double>(sample.flows),
      static_cast<unsigned long>(sample.affected_destinations));

  // Focused probe: for every destination host in the cut pod, search flow
  // seeds until we find a flow from a remote host whose ECMP hash sends it
  // through the dead core — that flow is dropped.  Finding one for every
  // pod host exhibits the "as many as 1,024 hosts" worst case directly.
  const std::uint64_t edges_per_pod = half_k;
  const std::uint64_t first_edge = pod.value() * edges_per_pod;
  std::uint64_t affected_dsts = 0;
  std::uint64_t walks = 0;
  const HostId remote{static_cast<std::uint32_t>(topo.num_hosts() - 1)};
  for (std::uint64_t e = first_edge; e < first_edge + edges_per_pod; ++e) {
    for (const HostId dst : topo.hosts_of_edge(topo.switch_at(1, e))) {
      for (std::uint64_t seed = 0; seed < 16 * half_k * half_k; ++seed) {
        WalkOptions options;
        options.flow_seed = seed;
        ++walks;
        if (!walk_packet(topo, stale, actual, remote, dst, options)
                 .delivered()) {
          ++affected_dsts;
          break;
        }
      }
    }
  }
  std::printf(
      "focused probe: a doomed flow was exhibited for %lu of %lu hosts in "
      "the cut pod (%lu walks)\n",
      static_cast<unsigned long>(affected_dsts),
      static_cast<unsigned long>(pod_hosts),
      static_cast<unsigned long>(walks));
  std::printf(
      "\nconclusion: one top-level link failure leaves every host of the\n"
      "cut pod reachable only by flows that avoid the dead core — exactly\n"
      "the \"logical disconnection\" of up to %.1f%% of hosts the paper\n"
      "motivates Aspen trees with.\n",
      100.0 * static_cast<double>(pod_hosts) /
          static_cast<double>(params.num_hosts()));

  // ---- Reconvergence via the incremental engine -------------------------
  // The drops above are a pre-convergence phenomenon: the tables are stale.
  // Once up*/down* reconverges — which the warm DeltaSession does by
  // patching only the rows the dead link dirties, not recomputing the
  // fabric — every edge pair is reachable again.  Run the same top-level
  // cut on a converged 3-level, 16-port fat tree (the 64-port fabric's
  // per-edge tables would dwarf the walk experiment this bench is about).
  // `--self-check` proves the patched tables digest-equal to a from-scratch
  // recompute of the faulted overlay.
  std::printf("\n== reconvergence: incremental up*/down* repair ==\n");
  const Topology small = Topology::build(fat_tree(3, 16));
  routing::DeltaSession session(small, DestGranularity::kEdge);
  std::uint64_t edges = 0;
  while (edges < small.num_switches() &&
         small.level_of(SwitchId{static_cast<std::uint32_t>(edges)}) == 1) {
    ++edges;
  }
  const std::uint64_t all_pairs = edges * (edges - 1);
  const SwitchId small_core = small.switch_at(3, 0);
  const LinkId cut = small.down_neighbors(small_core)[0].link;
  const RecomputeStats stats = session.apply(std::span<const LinkId>{&cut, 1});
  std::uint64_t pairs = 0;
  for (std::uint64_t e = 0; e < edges; ++e) {
    pairs += session.state().tables[e].reachable_count();
  }
  std::printf(
      "3-level, 16-port fat tree: cut %s, patched %lu rows in place\n"
      "(%lu full recomputes out of %lu rows), reachable edge pairs "
      "%lu / %lu\n",
      to_string(cut).c_str(),
      static_cast<unsigned long>(stats.patched_switches),
      static_cast<unsigned long>(stats.full_rows),
      static_cast<unsigned long>(stats.total_dests),
      static_cast<unsigned long>(pairs),
      static_cast<unsigned long>(all_pairs));
  bool ok = pairs == all_pairs;

  if (self_check) {
    const RoutingState fresh = compute_updown_routes(
        small, session.overlay(), DestGranularity::kEdge, 1);
    const bool digests_equal = tables_match_by_digest(session.state(), fresh);
    std::printf("self-check: incremental state vs full recompute: %s\n",
                digests_equal ? "digest-equal" : "MISMATCH");
    ok = ok && digests_equal;
  }
  const bool restored = session.rollback();
  std::printf("rollback: baseline digests %s\n",
              restored ? "restored" : "MISMATCH (rebuilt)");
  ok = ok && restored;
  std::printf(
      "\nafter reconvergence no pair is lost: the paper's 1.5%% logical\n"
      "disconnection is the cost of the *window*, which is what Aspen\n"
      "trees shrink.\n");
  return ok ? 0 : 3;
}
