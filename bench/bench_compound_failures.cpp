// Experiment X3 (extension; §8.3's deferred analysis) — compound failures.
//
// "In most cases, our techniques apply seamlessly to multiple simultaneous
//  link failures.  In fact, failures far enough apart in a tree have no
//  effect on one another … We leave a complete analysis of compound failure
//  patterns for future work."
//
// This bench performs that analysis for double failures on the Fig. 4/5
// trees: classify random failure pairs by structural distance (same switch,
// same pod, same top-level subtree, independent) and measure how often
// extended ANP fully masks the pair, plus the §8.3 pathological pattern
// that kills an entire pod's redundancy at once.
#include <cstdio>

#include <map>
#include <string>

#include "src/aspen/generator.h"
#include "src/fault/scenarios.h"
#include "src/topo/queries.h"
#include "src/util/table.h"

namespace {

using namespace aspen;

// Structural relationship between two failed links' upper endpoints.
std::string classify(const Topology& topo, LinkId a, LinkId b) {
  const SwitchId ua = topo.switch_of(topo.link(a).upper);
  const SwitchId ub = topo.switch_of(topo.link(b).upper);
  if (ua == ub) return "same switch";
  if (topo.level_of(ua) == topo.level_of(ub) &&
      topo.pod_of(ua) == topo.pod_of(ub)) {
    return "same pod";
  }
  // Shared ancestor test at the top level is trivially true (single top
  // pod); use the level-(n-1) pods to detect same-subtree pairs.
  const Level probe = topo.levels() - 1;
  const auto anc_a = topo.level_of(ua) >= probe
                         ? std::vector<SwitchId>{ua}
                         : ancestors_at_level(topo, ua, probe);
  const auto anc_b = topo.level_of(ub) >= probe
                         ? std::vector<SwitchId>{ub}
                         : ancestors_at_level(topo, ub, probe);
  return intersects(anc_a, anc_b) ? "same subtree" : "independent";
}

}  // namespace

int main() {
  using namespace aspen;

  for (const auto& entries :
       std::vector<std::vector<int>>{{1, 0, 0}, {0, 1, 0}}) {
    const Topology topo =
        Topology::build(generate_tree(4, 4, FaultToleranceVector(entries)));
    std::printf("== Double failures on %s (extended ANP) ==\n\n",
                topo.params().to_string().c_str());

    struct Bucket {
      std::uint64_t trials = 0;
      std::uint64_t masked = 0;
      std::uint64_t restored = 0;
    };
    std::map<std::string, Bucket> buckets;

    Rng rng(404);
    const int kTrials = 120;
    MultiFailureOptions options;
    options.anp.notify_children = true;
    for (int trial = 0; trial < kTrials; ++trial) {
      const auto pair = random_inter_switch_links(topo, 2, rng);
      Bucket& bucket = buckets[classify(topo, pair[0], pair[1])];
      ++bucket.trials;
      const MultiFailureOutcome outcome =
          run_multi_failure(ProtocolKind::kAnp, topo, pair, options);
      if (outcome.degraded_delivery.undelivered() == 0) ++bucket.masked;
      if (outcome.tables_restored) ++bucket.restored;
    }

    TextTable table({"pair relationship", "trials", "fully masked",
                     "tables restored"});
    for (const auto& [name, bucket] : buckets) {
      table.add_row({name, std::to_string(bucket.trials),
                     format_percent(static_cast<double>(bucket.masked),
                                    static_cast<double>(bucket.trials)),
                     format_percent(static_cast<double>(bucket.restored),
                                    static_cast<double>(bucket.trials))});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  // The §8.3 pathological pattern: kill every link between one switch and
  // one child pod at the fault-tolerant level.
  const Topology topo =
      Topology::build(generate_tree(4, 4, FaultToleranceVector{0, 1, 0}));
  std::printf(
      "== §8.3 pathological compound failure on %s ==\n"
      "(all c_3 = 2 links from one L3 switch into one child pod)\n\n",
      topo.params().to_string().c_str());
  const SwitchId l3 = topo.switch_at(3, 0);
  const PodId child =
      topo.pod_of(topo.switch_of(topo.down_neighbors(l3)[0].node));
  const auto links = kill_pod_connectivity(topo, l3, child);
  MultiFailureOptions options;
  options.anp.notify_children = true;
  const MultiFailureOutcome outcome =
      run_multi_failure(ProtocolKind::kAnp, topo, links, options);
  std::printf(
      "failed %zu links at once: %lu of %lu flows undeliverable; tables "
      "restored after recovery: %s\n",
      links.size(),
      static_cast<unsigned long>(outcome.degraded_delivery.undelivered()),
      static_cast<unsigned long>(outcome.degraded_delivery.flows),
      outcome.tables_restored ? "yes" : "NO");
  std::printf(
      "(with the whole bundle dead the tree behaves like a fat tree below\n"
      "L3 — but extended ANP still reroutes inter-subtree traffic, so loss\n"
      "is confined to flows with no surviving up*/down* path.)\n");
  return 0;
}
