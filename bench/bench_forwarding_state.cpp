// Experiment X5 (extension) — forwarding state vs hierarchical aggregation
// (§5.3).
//
// "This property contributes to the efficiency of communication and
//  labeling schemes that rely on shared label prefixes for compact
//  forwarding state."
//
// For every 4-level, 6-port Aspen tree: the total prefix-table entries a
// PortLand/ALIAS-style labeling scheme needs, against flat per-edge and
// per-host tables — and the same accounting at deployment scale.
#include <cstdio>

#include "src/aspen/enumerate.h"
#include "src/aspen/generator.h"
#include "src/labels/labels.h"
#include "src/util/table.h"

int main() {
  using namespace aspen;

  std::printf(
      "== Compact (prefix) vs flat forwarding state, all n=4, k=6 Aspen "
      "trees ==\n\n");
  TextTable table({"FTV", "hosts", "overall agg", "compact entries",
                   "per switch", "flat edge-keyed", "flat host-keyed"});
  for (const TreeParams& params : enumerate_trees(4, 6)) {
    const Topology topo = Topology::build(params);
    const ForwardingStateStats stats = forwarding_state_stats(topo);
    table.add_row({params.ftv().to_string(),
                   std::to_string(params.num_hosts()),
                   format_double(params.overall_aggregation(), 0),
                   std::to_string(stats.compact_entries),
                   format_double(stats.mean_compact_per_switch, 1),
                   std::to_string(stats.flat_edge_entries),
                   std::to_string(stats.flat_host_entries)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf(
      "== Deployment scale: 3-level trees, compact state per switch ==\n\n");
  TextTable big({"tree", "hosts", "compact/switch", "flat host-keyed/switch",
                 "ratio"});
  for (const int k : {16, 32, 64}) {
    const TreeParams params = fat_tree(3, k);
    const Topology topo = Topology::build(params);
    const ForwardingStateStats stats = forwarding_state_stats(topo);
    const double flat_per_switch =
        static_cast<double>(stats.flat_host_entries) /
        static_cast<double>(topo.num_switches());
    big.add_row({params.to_string(), std::to_string(params.num_hosts()),
                 format_double(stats.mean_compact_per_switch, 1),
                 format_double(flat_per_switch, 0),
                 format_double(flat_per_switch /
                                   stats.mean_compact_per_switch,
                               0) +
                     "x"});
  }
  std::printf("%s\n", big.to_string().c_str());
  std::printf(
      "hierarchical labels keep per-switch state at O(k) entries while flat\n"
      "tables grow with the fabric — the §5.3 reason hierarchical\n"
      "aggregation is worth trading fault tolerance against.\n");
  return 0;
}
