// Experiment X13 — the what-if query service under live chaos.
//
// Headline: queries/second for a serve-under-chaos campaign on a Fig. 3
// tree (4-level, 6-port, <0,0,2>), across --threads=1/2/4, with report
// fingerprints proving byte-identity at every thread count.  The audited
// campaign is the acceptance bar made executable: >= 10k queries through
// lossy client channels while a chaos campaign mutates the fabric, and the
// post-hoc auditor must find zero incorrect answers — every response's
// snapshot digest, staleness label, and result re-checked against the
// ground-truth timeline.  Three more self-checks ride along, all
// exit-affecting:
//
//   * resume     — the server restored from every checkpoint the campaign
//     cut must re-checkpoint byte-identically (kill-and-resume);
//   * latency    — per-class p50/p99 from the raw arrival-to-answer
//     distributions (Summary keeps no order statistics on purpose);
//   * shedding   — an overload configuration (watermark 2, one slow query
//     class) must shed rather than queue without bound, and the clients
//     must still converge answers through retry backpressure.
//
// Output is JSON (one document on stdout), bench_routing_scale idiom; the
// metrics block at the end carries the serve.* counters — including
// serve.cache.hit / serve.cache.miss / serve.cache.evict.  `--quick`
// shrinks the side checks for CI smoke runs but keeps the audited headline
// campaign at >= 10k queries.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "src/aspen/generator.h"
#include "src/obs/obs.h"
#include "src/serve/driver.h"
#include "src/topo/topology.h"
#include "src/util/parallel.h"

namespace {

using namespace aspen;
using namespace aspen::serve;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             // aspen-lint: allow(wall-clock) -- benchmark harness timing; measures host speed and never feeds a simulated result
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool g_all_ok = true;

const char* check(bool ok) {
  g_all_ok = g_all_ok && ok;
  return ok ? "true" : "false";
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

ServeChaosOptions campaign_options(int num_queries) {
  ServeChaosOptions options;
  options.chaos.seed = 17;
  options.chaos.num_events = 40;
  options.chaos.check_flows = 64;
  options.chaos.check_every = 10;
  options.num_queries = num_queries;
  options.num_clients = 8;
  options.query_interarrival_ms = 0.5;
  // Spread the chaos schedule across the query window.
  options.action_every_ms =
      static_cast<double>(num_queries) * options.query_interarrival_ms /
      static_cast<double>(options.chaos.num_events + 1);
  options.seal_every_actions = 2;
  options.checkpoint_every = num_queries / 6;
  options.client.channel.drop_rate = 0.15;
  options.client.channel.duplicate_rate = 0.05;
  options.client.channel.jitter_ms = 0.3;
  return options;
}

void print_class(const char* name, const std::vector<double>& latencies,
                 const char* trailer) {
  std::printf("      \"%s\": {\"answered\": %llu, \"p50_ms\": %.4f, "
              "\"p99_ms\": %.4f}%s\n",
              name, static_cast<unsigned long long>(latencies.size()),
              percentile(latencies, 0.50), percentile(latencies, 0.99),
              trailer);
}

// ---- Headline: the audited campaign, across thread counts ---------------

ServeChaosReport run_headline(const Topology& topo, int num_queries) {
  const ServeChaosOptions base = campaign_options(num_queries);
  const std::vector<int> thread_counts{1, 2, 4};

  std::printf("  \"campaign\": {\n");
  std::printf("    \"queries\": %d, \"clients\": %d, \"chaos_events\": %d, "
              "\"drop_rate\": %.2f,\n",
              base.num_queries, base.num_clients, base.chaos.num_events,
              base.client.channel.drop_rate);

  ServeChaosReport report;
  std::uint64_t serial_fingerprint = 0;
  double serial_ms = 0.0;
  std::printf("    \"threads\": [\n");
  for (std::size_t t = 0; t < thread_counts.size(); ++t) {
    ServeChaosOptions options = base;
    options.threads = thread_counts[t];
    parallel::set_num_threads(thread_counts[t]);
    double wall_ms = 0.0;
    {
      const obs::PauseObs quiet;
      const double t0 = now_ms();
      report = run_serve_under_chaos(ProtocolKind::kAnp, topo, options);
      wall_ms = now_ms() - t0;
    }
    const std::uint64_t fingerprint = report.fingerprint();
    if (thread_counts[t] == 1) {
      serial_fingerprint = fingerprint;
      serial_ms = wall_ms;
    }
    std::printf("      {\"threads\": %d, \"wall_ms\": %.1f, "
                "\"queries_per_s\": %.0f, \"speedup_vs_serial\": %.2f, "
                "\"fingerprint\": \"%016llx\", \"identical_to_serial\": %s}%s\n",
                thread_counts[t], wall_ms,
                static_cast<double>(base.num_queries) / (wall_ms / 1000.0),
                serial_ms / wall_ms,
                static_cast<unsigned long long>(fingerprint),
                check(fingerprint == serial_fingerprint),
                t + 1 < thread_counts.size() ? "," : "");
  }
  parallel::set_num_threads(1);
  std::printf("    ],\n");

  // The acceptance bar: every answer audited, zero mismatches.
  std::printf("    \"answered\": %llu, \"gave_up\": %llu, "
              "\"retransmits\": %llu, \"seals\": %llu,\n",
              static_cast<unsigned long long>(report.answered),
              static_cast<unsigned long long>(report.gave_up),
              static_cast<unsigned long long>(report.clients.retransmits),
              static_cast<unsigned long long>(report.seals));
  std::printf("    \"audited\": %llu, \"audit_mismatches\": %llu, "
              "\"audit_clean\": %s, \"campaign_passed\": %s,\n",
              static_cast<unsigned long long>(report.audited),
              static_cast<unsigned long long>(report.audit_mismatches),
              check(report.audit_mismatches == 0), check(report.passed()));
  std::printf("    \"latency\": {\n");
  print_class("route", report.route_latency_ms, ",");
  print_class("what_if", report.what_if_latency_ms, ",");
  print_class("loss", report.loss_latency_ms, "");
  std::printf("    },\n");

  // Staleness distribution across answered queries: how far behind the
  // live fabric degraded-mode answers ran.
  std::vector<double> staleness(report.staleness_event_samples.size());
  double staleness_sum = 0.0;
  for (std::size_t i = 0; i < staleness.size(); ++i) {
    staleness[i] = static_cast<double>(report.staleness_event_samples[i]);
    staleness_sum += staleness[i];
  }
  std::printf("    \"staleness\": {\"mean_events\": %.3f, "
              "\"p99_events\": %.1f, \"max_events\": %.0f, "
              "\"mean_ms\": %.3f},\n",
              staleness.empty()
                  ? 0.0
                  : staleness_sum / static_cast<double>(staleness.size()),
              percentile(staleness, 0.99),
              staleness.empty()
                  ? 0.0
                  : *std::max_element(staleness.begin(), staleness.end()),
              report.staleness_ms.count() > 0 ? report.staleness_ms.mean()
                                              : 0.0);
  std::printf("    \"shed_rate\": %.4f, \"cache\": {\"hits\": %llu, "
              "\"misses\": %llu, \"evictions\": %llu, \"hit_rate\": %.3f}\n",
              report.server.received > 0
                  ? static_cast<double>(report.server.shed) /
                        static_cast<double>(report.server.received)
                  : 0.0,
              static_cast<unsigned long long>(report.cache_hits),
              static_cast<unsigned long long>(report.cache_misses),
              static_cast<unsigned long long>(report.cache_evictions),
              report.cache_hits + report.cache_misses > 0
                  ? static_cast<double>(report.cache_hits) /
                        static_cast<double>(report.cache_hits +
                                            report.cache_misses)
                  : 0.0);
  std::printf("  },\n");
  return report;
}

// ---- Kill-and-resume byte identity --------------------------------------

void run_resume(const Topology& topo, const ServeChaosReport& report) {
  std::uint64_t restored = 0;
  bool identical = true;
  {
    const obs::PauseObs quiet;
    for (const std::string& cp : report.checkpoints) {
      Simulator sim;
      SnapshotRegistry registry(topo, DestGranularity::kEdge);
      Server server(sim, topo, registry);
      server.restore(cp);
      identical = identical && server.checkpoint() == cp;
      ++restored;
    }
  }
  std::printf("  \"resume\": {\n");
  std::printf("    \"checkpoints\": %llu, \"restored\": %llu, "
              "\"byte_identical\": %s\n",
              static_cast<unsigned long long>(report.checkpoints.size()),
              static_cast<unsigned long long>(restored),
              check(identical && restored > 0));
  std::printf("  },\n");
}

// ---- Overload: shedding as backpressure ---------------------------------

void run_overload(const Topology& topo, int num_queries) {
  ServeChaosOptions options = campaign_options(num_queries);
  options.server.inflight_watermark = 2;
  options.server.what_if_service_ms = 2.0;  // slow class, tiny watermark
  options.query_interarrival_ms = 0.2;      // arrivals outpace service
  options.action_every_ms =
      static_cast<double>(num_queries) * options.query_interarrival_ms /
      static_cast<double>(options.chaos.num_events + 1);
  ServeChaosReport report;
  {
    const obs::PauseObs quiet;
    report = run_serve_under_chaos(ProtocolKind::kAnp, topo, options);
  }
  const double shed_rate =
      report.server.received > 0
          ? static_cast<double>(report.server.shed) /
                static_cast<double>(report.server.received)
          : 0.0;
  std::printf("  \"overload\": {\n");
  std::printf("    \"queries\": %d, \"watermark\": %llu, \"shed\": %llu, "
              "\"shed_rate\": %.3f,\n",
              options.num_queries,
              static_cast<unsigned long long>(
                  options.server.inflight_watermark),
              static_cast<unsigned long long>(report.server.shed),
              shed_rate);
  std::printf("    \"answered\": %llu, \"gave_up\": %llu, "
              "\"shed_seen_by_clients\": %llu,\n",
              static_cast<unsigned long long>(report.answered),
              static_cast<unsigned long long>(report.gave_up),
              static_cast<unsigned long long>(report.clients.shed_seen));
  // Overload must shed explicitly, still answer a useful fraction through
  // retry backpressure, and keep every answer audit-clean.
  std::printf("    \"shedding_engaged\": %s, \"still_answering\": %s, "
              "\"audit_clean\": %s\n",
              check(report.server.shed > 0),
              check(report.answered > 0),
              check(report.audit_mismatches == 0));
  std::printf("  },\n");
}

}  // namespace

int main(int argc, char** argv) {
  aspen::obs::ObsConfig obs_config;
  obs_config.metrics = true;
  aspen::obs::configure(obs_config);

  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  // The headline tree matches bench_survivability: Fig. 3, 4-level 6-port,
  // <0,0,2> — 63 switches, 216 links.
  const Topology fig3 =
      Topology::build(generate_tree(4, 6, FaultToleranceVector({0, 0, 2})));

  std::printf("{\n");
  std::printf("  \"experiment\": \"serve\",\n");
  std::printf("  \"quick\": %s,\n", quick ? "true" : "false");
  std::printf("  \"hardware_threads\": %d,\n",
              aspen::parallel::effective_num_threads(0));
  std::printf("  \"tree\": {\"n\": 4, \"k\": 6, \"ftv\": \"<0,0,2>\", "
              "\"switches\": %llu, \"links\": %llu},\n",
              static_cast<unsigned long long>(fig3.num_switches()),
              static_cast<unsigned long long>(fig3.num_links()));

  // The audited campaign stays at >= 10k queries even in quick mode — it
  // is the acceptance criterion, not a tunable.
  const ServeChaosReport report = run_headline(fig3, quick ? 10'000 : 20'000);
  run_resume(fig3, report);
  run_overload(fig3, quick ? 1'000 : 4'000);

  // Populate the metrics registry with one instrumented campaign (the
  // timed regions above run obs-paused so they measure undisturbed cost).
  {
    aspen::obs::reset_collected();
    ServeChaosOptions options = campaign_options(quick ? 1'000 : 4'000);
    const ServeChaosReport instrumented =
        run_serve_under_chaos(ProtocolKind::kAnp, fig3, options);
    check(instrumented.passed());
  }

  std::printf("  \"all_checks_passed\": %s,\n", g_all_ok ? "true" : "false");
  std::printf("  \"metrics\":\n%s\n",
              aspen::obs::metrics().to_json(2).c_str());
  std::printf("}\n");
  return g_all_ok ? 0 : 2;
}
