// Experiment X4 (extension) — protocol-timer sensitivity.
//
// §1: "the time for global re-convergence of the broadcast-based routing
// protocols (e.g. OSPF and IS-IS) used in today's data centers can be tens
// of seconds … in practice, settings such as protocol timers can further
// compound these delays."
//
// The paper's §9.2 constants deliberately idealize LSP (no pacing).  This
// bench turns the pacing timers back on — LSA-generation throttle and SPF
// hold-down at classic router defaults — and shows LSP convergence reaching
// the tens of seconds §1 describes, while ANP, which never floods or runs
// SPF, is untouched by them.
#include <cstdio>

#include "src/aspen/fixed_hosts.h"
#include "src/aspen/generator.h"
#include "src/proto/experiment.h"
#include "src/util/table.h"

int main() {
  using namespace aspen;

  struct Preset {
    const char* name;
    DelayModel delays;
  };
  DelayModel conservative = DelayModel::classic_ospf_timers();
  conservative.spf_delay = 10'000.0;
  conservative.lsa_generation_delay = 1'000.0;
  const Preset presets[] = {
      {"paper ideal (no pacing)", DelayModel{}},
      {"classic defaults (0.5s gen, 5s SPF)",
       DelayModel::classic_ospf_timers()},
      {"conservative (1s gen, 10s SPF)", conservative},
  };

  const int k = 6;
  const int n = 3;
  const Topology fat = Topology::build(fat_tree(n, k));
  const Topology aspen =
      Topology::build(design_fixed_host_tree(n, k, /*extra_levels=*/1));

  std::printf(
      "== Timer sensitivity: k=%d fat tree (LSP) vs fixed-host Aspen (ANP) "
      "==\n\n",
      k);
  TextTable table({"timer preset", "LSP avg (ms)", "LSP max (ms)",
                   "ANP avg (ms)", "ANP max (ms)", "LSP:ANP"});
  for (const Preset& preset : presets) {
    SweepOptions options;
    options.delays = preset.delays;
    const SweepResult lsp =
        sweep_link_failures(ProtocolKind::kLsp, fat, options);
    const SweepResult anp =
        sweep_link_failures(ProtocolKind::kAnp, aspen, options);
    table.add_row({preset.name, format_double(lsp.convergence_ms.mean(), 0),
                   format_double(lsp.convergence_ms.max(), 0),
                   format_double(anp.convergence_ms.mean(), 0),
                   format_double(anp.convergence_ms.max(), 0),
                   format_double(lsp.convergence_ms.mean() /
                                     anp.convergence_ms.mean(),
                                 0) +
                       "x"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "with realistic pacing, a single link failure leaves parts of the fat\n"
      "tree dark for over ten seconds — the §1 'tens of seconds' regime —\n"
      "while ANP's notification path involves neither flooding throttles\n"
      "nor SPF hold-downs.\n");
  return 0;
}
