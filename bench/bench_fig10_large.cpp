// Experiments F10c/F10d — regenerates Figures 10(c) and 10(d): network
// size, control overhead and convergence time for mega-data-center fat/
// Aspen pairs, computed analytically — "since the model checker scales to
// at most a few hundred switches, we use additional analysis for mega data
// center sized networks" (§9.2).
#include <cstdio>

#include "src/analysis/series.h"
#include "src/util/table.h"

int main() {
  using namespace aspen;

  const auto series = figure10_large_series();

  std::printf(
      "== Figure 10(c): switch:host ratios — total vs reacting ==\n"
      "(Aspen Total / LSP Total are network size; LSP React / Aspen React\n"
      " are switches reacting per failure, averaged over all links)\n\n");
  TextTable fig10c({"hosts:k,n", "Aspen total/hosts", "LSP total/hosts",
                    "LSP react/hosts", "Aspen react/hosts",
                    "Aspen react %"});
  for (const PairPoint& p : series) {
    fig10c.add_row({
        p.label(),
        format_double(p.aspen_switch_host_ratio, 3),
        format_double(p.fat_switch_host_ratio, 3),
        format_double(p.lsp_react_host_ratio, 3),
        format_double(p.anp_react_host_ratio, 4),
        format_double(100.0 * p.anp_react /
                          static_cast<double>(p.aspen_switches),
                      1) +
            "%",
    });
  }
  std::printf("%s\n", fig10c.to_string().c_str());

  std::printf(
      "== Figure 10(d): average convergence time (ms, log scale in the\n"
      "paper), with hop labels ==\n\n");
  TextTable fig10d({"hosts:k,n", "LSP avg hops", "LSP avg (ms)",
                    "ANP avg hops", "ANP avg (ms)", "speedup"});
  for (const PairPoint& p : series) {
    fig10d.add_row({
        p.label(),
        format_double(p.lsp_avg_hops, 2),
        format_double(p.lsp_avg_ms, 1),
        format_double(p.anp_avg_hops, 2),
        format_double(p.anp_avg_ms, 1),
        format_double(p.lsp_avg_ms / p.anp_avg_ms, 1) + "x",
    });
  }
  std::printf("%s\n", fig10d.to_string().c_str());

  std::printf(
      "expected shape (paper): LSP involves all switches; ANP reacts with\n"
      "10-20%% of switches; ANP converges orders of magnitude faster, with\n"
      "hop labels 3/4.5/6 (LSP) and 1.5/2/2.5 (ANP) per depth group.\n");
  return 0;
}
