// Experiment X7 (extension; §10) — flapping links, through the detector.
//
// "Finally the study shows that link failures are sporadic and
//  short-lived, supporting our belief that such failures should not cause
//  global re-convergence."
//
// A single link flaps (period/duty square wave) and every protocol
// reaction is driven by the BFD-style detector's post-damping reports
// (src/fault/detector.h) instead of an oracle calling fail/recover
// directly.  Without damping every confirmed transition floods (LSP) or
// notifies (ANP); with damping the exponential penalty suppresses the
// storm after a bounded number of reports and reconciles once the link
// calms down.  Output is JSON (one document on stdout) comparing both
// protocols at several flap rates, damped and undamped.
#include <cstdio>
#include <vector>

#include "src/obs/obs.h"
#include "src/aspen/fixed_hosts.h"
#include "src/aspen/generator.h"
#include "src/fault/detector.h"
#include "src/proto/experiment.h"

namespace {

using namespace aspen;

void print_run(const char* fabric, ProtocolKind kind, const Topology& topo,
               SimTime period_ms, int cycles, bool damped,
               bool trailing_comma) {
  fault::DetectorOptions options;
  options.damping.enabled = damped;
  const fault::FlapScenarioResult flap = fault::run_flap_scenario(
      kind, topo, topo.links_at_level(2)[0], period_ms, /*duty=*/0.5, cycles,
      options);
  std::printf("    {\n");
  std::printf("      \"fabric\": \"%s\",\n", fabric);
  std::printf("      \"protocol\": \"%s\",\n", to_cstring(kind));
  std::printf("      \"flap_period_ms\": %.0f,\n", period_ms);
  std::printf("      \"cycles\": %d,\n", cycles);
  std::printf("      \"damping\": %s,\n", damped ? "true" : "false");
  std::printf("      \"confirmed_transitions\": %llu,\n",
              static_cast<unsigned long long>(flap.confirmed_transitions));
  std::printf("      \"notifications\": %llu,\n",
              static_cast<unsigned long long>(flap.notifications));
  std::printf("      \"suppressed_transitions\": %llu,\n",
              static_cast<unsigned long long>(flap.suppressed_transitions));
  std::printf("      \"notification_bound\": %d,\n", flap.notification_bound);
  std::printf("      \"protocol_messages\": %llu,\n",
              static_cast<unsigned long long>(flap.messages));
  std::printf("      \"table_changes\": %llu,\n",
              static_cast<unsigned long long>(flap.table_changes));
  std::printf("      \"dark_time_ms\": %.3f,\n", flap.reaction_time_ms);
  std::printf("      \"audit_violations\": %llu,\n",
              static_cast<unsigned long long>(flap.audit.findings.size()));
  std::printf("      \"tables_restored\": %s\n",
              flap.tables_restored ? "true" : "false");
  std::printf("    }%s\n", trailing_comma ? "," : "");
}

}  // namespace

int main() {
  using namespace aspen;

  obs::ObsConfig obs_config;
  obs_config.metrics = true;
  obs::configure(obs_config);

  const int k = 6;
  const int n = 3;
  const int cycles = 10;
  const Topology fat = Topology::build(fat_tree(n, k));
  const Topology aspen_tree =
      Topology::build(design_fixed_host_tree(n, k, /*extra_levels=*/1));

  std::printf("{\n");
  std::printf("  \"experiment\": \"flap_damping\",\n");
  std::printf("  \"fabrics\": {\"fat\": \"fat(%d,%d)+LSP\", \"aspen\": "
              "\"aspen(%d,%d,+1)+ANP\"},\n",
              n, k, n, k);
  std::printf("  \"runs\": [\n");
  const std::vector<SimTime> periods{200.0, 400.0, 1000.0};
  for (std::size_t p = 0; p < periods.size(); ++p) {
    for (const bool damped : {false, true}) {
      print_run("fat", ProtocolKind::kLsp, fat, periods[p], cycles, damped,
                true);
      print_run("aspen", ProtocolKind::kAnp, aspen_tree, periods[p], cycles,
                damped,
                p + 1 < periods.size() || !damped);
    }
  }
  std::printf("  ],\n");
  std::printf("  \"metrics\":\n%s\n", obs::metrics().to_json(2).c_str());
  std::printf("}\n");
  return 0;
}
