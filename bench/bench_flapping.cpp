// Experiment X7 (extension; §10) — flapping links.
//
// "Finally the study shows that link failures are sporadic and
//  short-lived, supporting our belief that such failures should not cause
//  global re-convergence."
//
// A single link flaps (fails and recovers) repeatedly.  Under LSP every
// transition floods the tree and every switch burns an SPF; under ANP each
// transition touches only the failure's neighborhood.  This bench totals
// the control-plane cost and dark time of a flap storm for both protocols.
#include <cstdio>

#include "src/aspen/fixed_hosts.h"
#include "src/aspen/generator.h"
#include "src/proto/experiment.h"
#include "src/util/table.h"

namespace {

using namespace aspen;

struct FlapCost {
  std::uint64_t messages = 0;
  double switch_cpu_ms = 0.0;  ///< modeled processing time burned fabric-wide
  double dark_ms = 0.0;        ///< Σ convergence windows (§1's downtime unit)
};

FlapCost flap(ProtocolSimulation& proto, LinkId link, int cycles,
              const DelayModel& delays, bool lsp) {
  FlapCost cost;
  for (int i = 0; i < cycles; ++i) {
    for (const bool fail : {true, false}) {
      const FailureReport report = fail
                                       ? proto.simulate_link_failure(link)
                                       : proto.simulate_link_recovery(link);
      cost.messages += report.messages_sent;
      cost.dark_ms += report.convergence_time_ms;
      // CPU model: every informed switch pays one full processing interval
      // (SPF for LSP, notification handling for ANP), duplicates ignored.
      cost.switch_cpu_ms += static_cast<double>(report.switches_informed) *
                            (lsp ? delays.lsa_processing
                                 : delays.anp_processing);
    }
  }
  return cost;
}

}  // namespace

int main() {
  using namespace aspen;

  const int k = 6;
  const int n = 3;
  const int cycles = 20;
  const Topology fat = Topology::build(fat_tree(n, k));
  const Topology aspen =
      Topology::build(design_fixed_host_tree(n, k, /*extra_levels=*/1));
  const DelayModel delays;

  std::printf(
      "== A flapping L2 link, %d fail/recover cycles (k=%d pair) ==\n\n",
      cycles, k);

  LspSimulation lsp(fat, delays);
  const FlapCost lsp_cost =
      flap(lsp, fat.links_at_level(2)[0], cycles, delays, /*lsp=*/true);

  AnpOptions extended;
  extended.notify_children = true;
  AnpSimulation anp(aspen, delays, extended);
  const FlapCost anp_cost =
      flap(anp, aspen.links_at_level(2)[0], cycles, delays, /*lsp=*/false);

  TextTable table({"fabric", "control messages", "switch CPU burned (s)",
                   "total dark time (s)"});
  table.add_row({"fat tree + LSP", std::to_string(lsp_cost.messages),
                 format_double(lsp_cost.switch_cpu_ms / 1000.0, 1),
                 format_double(lsp_cost.dark_ms / 1000.0, 2)});
  table.add_row({"aspen + ANP", std::to_string(anp_cost.messages),
                 format_double(anp_cost.switch_cpu_ms / 1000.0, 1),
                 format_double(anp_cost.dark_ms / 1000.0, 2)});
  std::printf("%s\n", table.to_string().c_str());

  std::printf(
      "one sporadic, short-lived flapping link costs the OSPF-style fabric\n"
      "%.0fx the control messages and %.0fx the dark time — §10's argument\n"
      "that transient failures should never trigger global re-convergence.\n",
      static_cast<double>(lsp_cost.messages) /
          static_cast<double>(anp_cost.messages),
      lsp_cost.dark_ms / anp_cost.dark_ms);
  return 0;
}
