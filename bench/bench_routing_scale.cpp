// Experiment X10 (extension) — routing-engine throughput at scale.
//
// The paper's evaluation needs up*/down* tables for every overlay the
// fault schedule produces; at n=4, k=16 scale a from-scratch computation
// per event dominates campaign wall time.  This bench measures the three
// engine axes that attack that cost (see DESIGN.md "routing engine"):
//
//   1. parallel fan-out — full computation across 1/2/4/8 workers, with
//      byte-identity to the serial result verified at every count;
//   2. allocation discipline — tables/s throughput of the full engine
//      (per-thread scratch arenas, flat level ranges) at several tree
//      sizes;
//   3. incrementality — single-link churn (fail, patch, heal, patch)
//      against a from-scratch recompute of the same overlay, with the
//      patched state verified identical.
//
// Output is JSON (one document on stdout), bench_detection.cpp idiom.
// `--quick` shrinks the config list for CI smoke runs.
//
// `--mega` switches to Experiment X14: one n=5, k=48-class tree routed
// entirely in RAM (FTV <0,0,7,23>; `--mega --quick` shrinks to
// <0,0,23,23> for CI).  At this scale a deep table compare is itself a
// multi-second pass, so identity checks run on the per-switch digests,
// and the document reports peak RSS (VmHWM) alongside wall times.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/obs/obs.h"
#include "src/aspen/generator.h"
#include "src/routing/updown.h"
#include "src/topo/link_state.h"
#include "src/util/parallel.h"

namespace {

using namespace aspen;

struct Config {
  int n;
  int k;
  const char* ftv_text;
  std::vector<int> ftv;
};

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             // aspen-lint: allow(wall-clock) -- benchmark harness timing; measures host speed and never feeds a simulated result
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-`reps` wall time of `fn` in milliseconds.  Timed regions run
/// with observability disabled: the bench reports the obs-off cost of the
/// engine, while the untimed verification passes (metrics enabled in
/// main) still populate the registry for the trailing "metrics" block.
template <typename Fn>
double time_best_ms(int reps, Fn&& fn) {
  const obs::PauseObs quiet;
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_ms();
    fn();
    const double elapsed = now_ms() - t0;
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

bool identical(const RoutingState& a, const RoutingState& b) {
  return a.tables == b.tables && a.digests == b.digests;
}

/// Peak resident set (VmHWM) in KiB, or -1 if /proc is unavailable.
long peak_rss_kb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) return std::atol(line.c_str() + 6);
  }
  return -1;
}

void run_mega(bool quick, int reps) {
  const Config cfg = quick
                         ? Config{5, 48, "<0,0,23,23>", {0, 0, 23, 23}}
                         : Config{5, 48, "<0,0,7,23>", {0, 0, 7, 23}};
  const double t_build = now_ms();
  const Topology topo = Topology::build(
      generate_tree(cfg.n, cfg.k, FaultToleranceVector(cfg.ftv)));
  const double build_ms = now_ms() - t_build;
  const LinkStateOverlay intact(topo);

  std::printf("  \"config\": {\"n\": %d, \"k\": %d, \"ftv\": \"%s\"},\n",
              cfg.n, cfg.k, cfg.ftv_text);
  std::printf("  \"switches\": %llu, \"links\": %llu, \"dests\": %llu,\n",
              static_cast<unsigned long long>(topo.num_switches()),
              static_cast<unsigned long long>(topo.num_links()),
              static_cast<unsigned long long>(topo.params().S));
  std::printf("  \"build_ms\": %.1f,\n", build_ms);

  RoutingState state;
  const double full_ms = time_best_ms(reps, [&] {
    state = compute_updown_routes(topo, intact, DestGranularity::kEdge, 1);
  });

  // Single-link churn against the freshly failed overlay; identity by
  // digest (a deep == at this scale costs as much as the patch itself).
  const std::span<const LinkId> top = topo.links_at_level(topo.levels());
  const LinkId churn = top[top.size() / 2];
  LinkStateOverlay failed(topo);
  failed.fail(churn);
  const LinkId changed[] = {churn};

  // At this scale even the table *copy* is a hundreds-of-ms operation, so
  // the patch is timed alone (copy outside the timed region, one rep).
  RoutingState patched = state;
  RecomputeStats stats{};
  double inc_fail_ms = 0.0;
  double inc_heal_ms = 0.0;
  {
    const obs::PauseObs quiet;
    const double t_fail = now_ms();
    stats = recompute_updown_routes(topo, failed, patched, changed, 1);
    inc_fail_ms = now_ms() - t_fail;
  }
  const RoutingState fresh_failed =
      compute_updown_routes(topo, failed, DestGranularity::kEdge, 1);
  const bool fail_identical = tables_match_by_digest(patched, fresh_failed);

  RoutingState healed = patched;
  {
    const obs::PauseObs quiet;
    const double t_heal = now_ms();
    (void)recompute_updown_routes(topo, intact, healed, changed, 1);
    inc_heal_ms = now_ms() - t_heal;
  }
  const bool heal_identical = tables_match_by_digest(healed, state);

  std::printf("  \"full_recompute_ms\": %.1f,\n", full_ms);
  std::printf("  \"incremental_fail_ms\": %.2f,\n", inc_fail_ms);
  std::printf("  \"incremental_heal_ms\": %.2f,\n", inc_heal_ms);
  std::printf("  \"rows\": {\"total\": %llu, \"full\": %llu, "
              "\"escalated\": %llu, \"patched_switches\": %llu},\n",
              static_cast<unsigned long long>(stats.total_dests),
              static_cast<unsigned long long>(stats.full_rows),
              static_cast<unsigned long long>(stats.escalated_rows),
              static_cast<unsigned long long>(stats.patched_switches));
  std::printf("  \"fail_identical_by_digest\": %s,\n",
              fail_identical ? "true" : "false");
  std::printf("  \"heal_identical_by_digest\": %s,\n",
              heal_identical ? "true" : "false");
  std::printf("  \"state_fingerprint\": \"0x%016llx\",\n",
              static_cast<unsigned long long>(state_fingerprint(state)));
  std::printf("  \"peak_rss_mb\": %.1f,\n",
              static_cast<double>(peak_rss_kb()) / 1024.0);
}

void run_config(const Config& cfg, int reps, bool trailing_comma) {
  const Topology topo =
      Topology::build(generate_tree(cfg.n, cfg.k, FaultToleranceVector(cfg.ftv)));
  const LinkStateOverlay intact(topo);

  std::printf("    {\n");
  std::printf("      \"n\": %d, \"k\": %d, \"ftv\": \"%s\",\n", cfg.n, cfg.k,
              cfg.ftv_text);
  std::printf("      \"switches\": %llu, \"links\": %llu, \"dests\": %llu,\n",
              static_cast<unsigned long long>(topo.num_switches()),
              static_cast<unsigned long long>(topo.num_links()),
              static_cast<unsigned long long>(topo.params().S));

  // Axis 1+2: full computation across thread counts, serial as baseline.
  const RoutingState serial =
      compute_updown_routes(topo, intact, DestGranularity::kEdge, 1);
  const double tables =
      static_cast<double>(topo.num_switches());
  std::printf("      \"full\": [\n");
  const std::vector<int> thread_counts{1, 2, 4, 8};
  double serial_ms = 0.0;
  for (std::size_t t = 0; t < thread_counts.size(); ++t) {
    const int threads = thread_counts[t];
    RoutingState out;
    const double wall_ms = time_best_ms(reps, [&] {
      out = compute_updown_routes(topo, intact, DestGranularity::kEdge,
                                  threads);
    });
    if (threads == 1) serial_ms = wall_ms;
    std::printf("        {\"threads\": %d, \"wall_ms\": %.3f, "
                "\"tables_per_s\": %.0f, \"speedup_vs_serial\": %.2f, "
                "\"identical_to_serial\": %s}%s\n",
                threads, wall_ms, tables / (wall_ms / 1000.0),
                serial_ms / wall_ms, identical(out, serial) ? "true" : "false",
                t + 1 < thread_counts.size() ? "," : "");
  }
  std::printf("      ],\n");

  // Axis 3: single-link churn.  Fail one top-level link, patch the rows it
  // dirties, heal it, patch back — versus a from-scratch recompute of each
  // overlay.  Patched states are verified identical to fresh ones.
  const std::span<const LinkId> top = topo.links_at_level(topo.levels());
  const LinkId churn = top[top.size() / 2];
  LinkStateOverlay failed(topo);
  failed.fail(churn);
  const LinkId changed[] = {churn};

  const double full_fail_ms = time_best_ms(reps, [&] {
    const RoutingState fresh =
        compute_updown_routes(topo, failed, DestGranularity::kEdge, 1);
    (void)fresh;
  });
  RoutingState patched = serial;
  RecomputeStats stats{};
  const double inc_fail_ms = time_best_ms(reps, [&] {
    patched = serial;
    stats = recompute_updown_routes(topo, failed, patched, changed, 1);
  });
  const RoutingState fresh_failed =
      compute_updown_routes(topo, failed, DestGranularity::kEdge, 1);
  const bool fail_identical = identical(patched, fresh_failed);

  // Heal: patch the failed state back up and compare against the original.
  RoutingState healed = fresh_failed;
  const double inc_heal_ms = time_best_ms(reps, [&] {
    healed = fresh_failed;
    (void)recompute_updown_routes(topo, intact, healed, changed, 1);
  });
  const bool heal_identical = identical(healed, serial);

  std::printf("      \"incremental\": {\n");
  std::printf("        \"churn_link_level\": %d,\n", topo.levels());
  std::printf("        \"full_recompute_ms\": %.3f,\n", full_fail_ms);
  std::printf("        \"incremental_fail_ms\": %.3f,\n", inc_fail_ms);
  std::printf("        \"incremental_heal_ms\": %.3f,\n", inc_heal_ms);
  std::printf("        \"speedup_vs_full\": %.2f,\n",
              full_fail_ms / inc_fail_ms);
  std::printf("        \"rows\": {\"total\": %llu, \"full\": %llu, "
              "\"escalated\": %llu, \"patched_switches\": %llu, "
              "\"untouched\": %llu},\n",
              static_cast<unsigned long long>(stats.total_dests),
              static_cast<unsigned long long>(stats.full_rows),
              static_cast<unsigned long long>(stats.escalated_rows),
              static_cast<unsigned long long>(stats.patched_switches),
              static_cast<unsigned long long>(stats.untouched_rows()));
  std::printf("        \"fail_identical\": %s,\n",
              fail_identical ? "true" : "false");
  std::printf("        \"heal_identical\": %s\n",
              heal_identical ? "true" : "false");
  std::printf("      }\n");
  std::printf("    }%s\n", trailing_comma ? "," : "");
}

}  // namespace

int main(int argc, char** argv) {
  aspen::obs::ObsConfig obs_config;
  obs_config.metrics = true;
  aspen::obs::configure(obs_config);

  bool quick = false;
  bool mega = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--mega") == 0) mega = true;
  }

  if (mega) {
    std::printf("{\n");
    std::printf("  \"experiment\": \"routing_scale_mega\",\n");
    std::printf("  \"quick\": %s,\n", quick ? "true" : "false");
    run_mega(quick, quick ? 1 : 2);
    std::printf("  \"metrics\":\n%s\n",
                aspen::obs::metrics().to_json(2).c_str());
    std::printf("}\n");
    return 0;
  }

  std::vector<Config> configs;
  if (quick) {
    configs.push_back({3, 8, "<0,0>", {0, 0}});
    configs.push_back({4, 8, "<0,0,0>", {0, 0, 0}});
  } else {
    configs.push_back({3, 8, "<0,0>", {0, 0}});
    configs.push_back({4, 8, "<0,0,0>", {0, 0, 0}});
    configs.push_back({4, 12, "<0,0,0>", {0, 0, 0}});
    configs.push_back({4, 16, "<0,0,0>", {0, 0, 0}});
  }
  const int reps = quick ? 1 : 3;

  std::printf("{\n");
  std::printf("  \"experiment\": \"routing_scale\",\n");
  std::printf("  \"quick\": %s,\n", quick ? "true" : "false");
  std::printf("  \"hardware_threads\": %d,\n",
              aspen::parallel::effective_num_threads(0));
  std::printf("  \"reps\": %d,\n", reps);
  std::printf("  \"configs\": [\n");
  for (std::size_t i = 0; i < configs.size(); ++i) {
    run_config(configs[i], reps, i + 1 < configs.size());
  }
  std::printf("  ],\n");
  std::printf("  \"metrics\":\n%s\n",
              aspen::obs::metrics().to_json(2).c_str());
  std::printf("}\n");
  return 0;
}
