// Experiment F10a/F10b — regenerates Figures 10(a) and 10(b) with the
// discrete-event simulator: for each small fat/Aspen pair, fail every
// inter-switch link once, let the tree's protocol (LSP on the fat tree,
// ANP on the Aspen tree) react, and record switches involved and
// re-convergence times (§9.2 methodology; 1 µs propagation, 20 ms ANP
// processing, 300 ms LSA processing).
//
// Host-link ("1st hop") failures are excluded from the sweeps: at the
// edge-switch routing granularity both protocols' tables are unaffected by
// them (§9.1 footnote 10 makes the same exclusion).
#include <cstdio>

#include "src/analysis/series.h"
#include "src/aspen/fixed_hosts.h"
#include "src/aspen/generator.h"
#include "src/proto/experiment.h"
#include "src/topo/topology.h"
#include "src/util/table.h"

int main() {
  using namespace aspen;

  std::printf(
      "== Figures 10(a)/(b): simulated failure reactions, small trees ==\n"
      "(LSP on the n-level fat tree; ANP on the (n+1)-level Aspen tree with\n"
      " FTV <k/2-1,0,...,0> and the same host count; every inter-switch\n"
      " link failed once)\n\n");

  TextTable fig10a({"hosts (k, n_fat/n_aspen)", "Aspen total", "LSP total",
                    "LSP react", "LSP informed", "Aspen react",
                    "Aspen informed"});
  TextTable fig10b({"hosts (k, n_fat/n_aspen)", "LSP avg (ms)",
                    "LSP max hops", "ANP avg (ms)", "ANP max hops",
                    "LSP msgs", "ANP msgs"});

  for (const auto& [k, n] :
       std::vector<std::pair<int, int>>{{4, 3}, {6, 3}, {8, 3}, {4, 4}}) {
    const Topology fat = Topology::build(fat_tree(n, k));
    const Topology aspen =
        Topology::build(design_fixed_host_tree(n, k, /*extra_levels=*/1));

    SweepOptions options;
    const SweepResult lsp =
        sweep_link_failures(ProtocolKind::kLsp, fat, options);
    const SweepResult anp =
        sweep_link_failures(ProtocolKind::kAnp, aspen, options);

    char label[64];
    std::snprintf(label, sizeof label, "%lu (k=%d, n=%d,%d)",
                  static_cast<unsigned long>(fat.num_hosts()), k, n, n + 1);

    fig10a.add_row({label, std::to_string(aspen.num_switches()),
                    std::to_string(fat.num_switches()),
                    format_double(lsp.reacted.mean(), 1),
                    format_double(lsp.informed.mean(), 1),
                    format_double(anp.reacted.mean(), 1),
                    format_double(anp.informed.mean(), 1)});
    fig10b.add_row({label, format_double(lsp.convergence_ms.mean(), 1),
                    format_double(lsp.hops.max(), 1),
                    format_double(anp.convergence_ms.mean(), 1),
                    format_double(anp.hops.max(), 1),
                    format_double(lsp.messages.mean(), 1),
                    format_double(anp.messages.mean(), 1)});

    std::printf(
        "%s: LSP %6.1f ms avg over %3lu failures | ANP %6.1f ms avg over "
        "%3lu failures (%.0fx faster)\n",
        label, lsp.convergence_ms.mean(),
        static_cast<unsigned long>(lsp.failures), anp.convergence_ms.mean(),
        static_cast<unsigned long>(anp.failures),
        anp.convergence_ms.mean() > 0
            ? lsp.convergence_ms.mean() / anp.convergence_ms.mean()
            : 0.0);
  }

  std::printf("\n== Figure 10(a): total vs reacting switches ==\n%s\n",
              fig10a.to_string().c_str());
  std::printf("== Figure 10(b): convergence time and message cost ==\n%s\n",
              fig10b.to_string().c_str());
  std::printf(
      "note: the paper's Fig. 10(b) LSP hop labels (6.4-9.25) reflect Mace\n"
      "flooding/queueing internals; our DES measures last-table-change\n"
      "times directly.  The headline shape — ANP orders of magnitude\n"
      "faster, gap growing with depth — is reproduced above.\n\n");

  // The paper "failed each link in each tree" — including host links.  At
  // host-granularity tables those failures are routing-visible, and the
  // simulated ANP hop averages land on the 1.5 / 2 hop labels of
  // Fig. 10(b).
  std::printf(
      "== Host-granularity sweep (every link, host links included) ==\n\n");
  TextTable host_table({"hosts (k, n_fat/n_aspen)", "ANP avg hops",
                        "ANP avg (ms)", "ANP react", "paper label"});
  for (const auto& [k, n] :
       std::vector<std::pair<int, int>>{{4, 3}, {6, 3}, {4, 4}}) {
    const Topology aspen =
        Topology::build(design_fixed_host_tree(n, k, /*extra_levels=*/1));
    SweepOptions options;
    options.granularity = DestGranularity::kHost;
    for (Level level = 1; level <= aspen.levels(); ++level) {
      options.levels.push_back(level);
    }
    const SweepResult sweep =
        sweep_link_failures(ProtocolKind::kAnp, aspen, options);
    char label[64];
    std::snprintf(label, sizeof label, "%lu (k=%d, n=%d,%d)",
                  static_cast<unsigned long>(aspen.num_hosts()), k, n, n + 1);
    host_table.add_row({label, format_double(sweep.hops.mean(), 2),
                        format_double(sweep.convergence_ms.mean(), 1),
                        format_double(sweep.reacted.mean(), 1),
                        n == 3 ? "1.5 hops" : "2 hops"});
  }
  std::printf("%s\n", host_table.to_string().c_str());
  return 0;
}
