// Experiment F7 — regenerates Figure 7: fat-tree : Aspen-tree convergence
// cost ratio for base depths n = 3..7 and x = 1..4 added fault-tolerant
// levels, at fixed host count (§8.2).
//
// Paper shape: for x <= n−2 the ratio is always above 1 (the Aspen tree's
// faster reactions outweigh its extra links / extra points of failure).
#include <cstdio>

#include "src/analysis/cost.h"
#include "src/util/table.h"

int main() {
  using namespace aspen;

  std::printf(
      "== Figure 7: fat:Aspen convergence cost ratio (fixed hosts) ==\n"
      "ratio > 1 means the Aspen tree wins despite added links\n\n");

  TextTable table({"fat depth n", "x=1", "x=2", "x=3", "x=4"});
  for (int n = 3; n <= 7; ++n) {
    std::vector<std::string> row{std::to_string(n)};
    for (int x = 1; x <= 4; ++x) {
      row.push_back(format_double(fat_vs_aspen_cost_ratio(n, x), 3));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());

  // Ablation: the same grid with the redundancy buried at the bottom of
  // the tree — the §8.1 guidance in cost terms.
  std::printf(
      "== Ablation: redundancy placement (x=1) — top vs spread vs bottom "
      "==\n");
  TextTable ablation({"fat depth n", "top", "spread", "bottom"});
  for (int n = 3; n <= 7; ++n) {
    ablation.add_row({
        std::to_string(n),
        format_double(
            fat_vs_aspen_cost_ratio(n, 1, RedundancyPlacement::kTop), 3),
        format_double(
            fat_vs_aspen_cost_ratio(n, 1, RedundancyPlacement::kSpread), 3),
        format_double(
            fat_vs_aspen_cost_ratio(n, 1, RedundancyPlacement::kBottom), 3),
    });
  }
  std::printf("%s\n", ablation.to_string().c_str());

  // Per-tree detail for one representative configuration.
  std::printf("== Detail: n=4, k=8, x=1 ==\n");
  const ConvergenceCost fat = fat_tree_cost(4, 8);
  const ConvergenceCost aspen = aspen_fixed_host_cost(4, 8, 1);
  std::printf("fat   : avg %.2f hops x %lu links = cost %.0f\n",
              fat.average_hops, static_cast<unsigned long>(fat.links),
              fat.cost);
  std::printf("aspen : avg %.2f hops x %lu links = cost %.0f\n",
              aspen.average_hops, static_cast<unsigned long>(aspen.links),
              aspen.cost);
  std::printf("ratio : %.3f\n", fat.cost / aspen.cost);
  return 0;
}
