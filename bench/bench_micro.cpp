// Experiment M1 — google-benchmark microbenchmarks of the library's core
// operations: tree generation, enumeration, topology construction, route
// computation, packet walking, and single-failure protocol reactions.
#include <benchmark/benchmark.h>

#include "src/aspen/enumerate.h"
#include "src/aspen/fixed_hosts.h"
#include "src/aspen/generator.h"
#include "src/proto/anp.h"
#include "src/proto/lsp.h"
#include "src/routing/packet_walk.h"
#include "src/routing/updown.h"
#include "src/topo/topology.h"
#include "src/topo/validate.h"

namespace {

using namespace aspen;

void BM_GenerateTree(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const auto ftv = FaultToleranceVector::fat_tree(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_tree(n, k, ftv));
  }
}
BENCHMARK(BM_GenerateTree)->Args({3, 16})->Args({5, 64})->Args({7, 128});

void BM_EnumerateTrees(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(count_trees(n, k));
  }
}
BENCHMARK(BM_EnumerateTrees)->Args({4, 6})->Args({3, 64})->Args({5, 16});

void BM_BuildTopology(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const TreeParams params = fat_tree(n, k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Topology::build(params));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(params.total_links()));
}
BENCHMARK(BM_BuildTopology)->Args({3, 8})->Args({3, 16})->Args({4, 8});

void BM_ValidateTopology(benchmark::State& state) {
  const Topology topo = Topology::build(fat_tree(3, 8));
  for (auto _ : state) {
    benchmark::DoNotOptimize(validate_topology(topo));
  }
}
BENCHMARK(BM_ValidateTopology);

void BM_ComputeRoutes(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const Topology topo = Topology::build(fat_tree(n, k));
  const LinkStateOverlay overlay(topo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_updown_routes(topo, overlay));
  }
}
BENCHMARK(BM_ComputeRoutes)->Args({3, 8})->Args({3, 16})->Args({4, 8});

void BM_PacketWalk(benchmark::State& state) {
  const Topology topo = Topology::build(fat_tree(3, 16));
  const LinkStateOverlay actual(topo);
  const StructuralRouter router(topo);
  std::uint32_t flow = 0;
  for (auto _ : state) {
    WalkOptions options;
    options.flow_seed = ++flow;
    benchmark::DoNotOptimize(walk_packet(
        topo, router, actual, HostId{flow % 64},
        HostId{(flow * 7 + 13) % static_cast<std::uint32_t>(
                                     topo.num_hosts())},
        options));
  }
}
BENCHMARK(BM_PacketWalk);

void BM_LspFailureReaction(benchmark::State& state) {
  const Topology topo = Topology::build(fat_tree(3, 8));
  LspSimulation lsp(topo);
  const LinkId link = topo.links_at_level(3)[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(lsp.simulate_link_failure(link));
    benchmark::DoNotOptimize(lsp.simulate_link_recovery(link));
  }
}
BENCHMARK(BM_LspFailureReaction);

void BM_AnpFailureReaction(benchmark::State& state) {
  const Topology topo =
      Topology::build(design_fixed_host_tree(3, 8, /*extra_levels=*/1));
  AnpSimulation anp(topo);
  const LinkId link = topo.links_at_level(2)[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(anp.simulate_link_failure(link));
    benchmark::DoNotOptimize(anp.simulate_link_recovery(link));
  }
}
BENCHMARK(BM_AnpFailureReaction);

void BM_StructuralNextHops(benchmark::State& state) {
  const Topology topo = Topology::build(fat_tree(3, 64));
  const StructuralRouter router(topo);
  const SwitchId edge = topo.switch_at(1, 0);
  std::uint32_t dest = 0;
  for (auto _ : state) {
    dest = (dest + 37) % static_cast<std::uint32_t>(topo.num_hosts());
    if (dest < 32) dest = 32;  // stay off the probe edge's own hosts
    benchmark::DoNotOptimize(router.next_hops(edge, HostId{dest}));
  }
}
BENCHMARK(BM_StructuralNextHops);

}  // namespace
