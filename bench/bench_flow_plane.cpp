// Experiment X15 — flow-scale traffic through the vulnerability window.
//
// The paper prices convergence in seconds; operators price it in lost
// flows.  This bench admits over a million concurrent flows into the
// FlowPlane (flat struct-of-arrays state over the arena forwarding
// tables) and steps them through a ChaosCampaign fault/heal schedule for
// ANP and LSP under the same seed, reporting:
//
//   1. headline flows/s — one epoch walking every admitted flow against
//      healthy converged tables, best-of-reps, obs paused;
//   2. ANP vs LSP traffic lost — the same schedule, batch admission
//      before every fault-plane action, exact integer accounting
//      (admitted == delivered + lost + inflight, by construction);
//   3. determinism — each protocol's campaign repeated at plane threads
//      1/2/4; the per-flow fate fingerprints must be byte-identical.
//
// The identity checks are exit-affecting: any fingerprint mismatch or
// accounting breach makes the bench exit non-zero, so the CI artifact
// job doubles as a determinism gate.  Output is one JSON document on
// stdout (bench_routing_scale.cpp idiom).  `--quick` shrinks to a
// Fig. 3-class tree with >=10^5 flows for CI smoke runs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/aspen/generator.h"
#include "src/obs/obs.h"
#include "src/routing/updown.h"
#include "src/topo/link_state.h"
#include "src/traffic/flow_plane.h"
#include "src/util/parallel.h"

namespace {

using namespace aspen;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             // aspen-lint: allow(wall-clock) -- benchmark harness timing; measures host speed and never feeds a simulated result
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Peak resident set (VmHWM) in KiB, or -1 if /proc is unavailable.
long peak_rss_kb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) return std::atol(line.c_str() + 6);
  }
  return -1;
}

struct BenchConfig {
  int n;
  int k;
  const char* ftv_text;
  std::uint64_t flows;
  int events;
  int reps;
};

/// One campaign + its wall time.  Campaign runs are timed with obs live:
/// unlike the headline epoch they are also the identity witnesses, so
/// they must run exactly as CI runs them.
struct TimedReport {
  FlowChaosReport report;
  double wall_ms = 0.0;
};

TimedReport run_campaign(ProtocolKind kind, const Topology& topo,
                         const BenchConfig& cfg, int plane_threads) {
  FlowChaosOptions options;
  options.chaos.seed = 7;
  options.chaos.num_events = cfg.events;
  options.chaos.check_flows = 16;  // campaign self-checks stay cheap
  options.plane.base_seed = 2026;
  options.plane.threads = plane_threads;
  options.total_flows = cfg.flows;

  TimedReport out;
  const double t0 = now_ms();
  out.report = run_flow_chaos(kind, topo, options);
  out.wall_ms = now_ms() - t0;
  return out;
}

void print_report(const char* key, const TimedReport& tr,
                  bool trailing_comma) {
  const FlowChaosReport& r = tr.report;
  std::printf("    \"%s\": {\n", key);
  std::printf("      \"admitted\": %llu, \"delivered\": %llu, "
              "\"lost\": %llu, \"inflight\": %llu,\n",
              static_cast<unsigned long long>(r.admitted),
              static_cast<unsigned long long>(r.delivered),
              static_cast<unsigned long long>(r.lost),
              static_cast<unsigned long long>(r.inflight));
  std::printf("      \"blackholed\": %llu, \"looped\": %llu, "
              "\"no_route\": %llu, \"reroutes\": %llu,\n",
              static_cast<unsigned long long>(r.blackholed),
              static_cast<unsigned long long>(r.looped),
              static_cast<unsigned long long>(r.no_route),
              static_cast<unsigned long long>(r.reroutes));
  std::printf("      \"lost_rate\": %.6f, \"epochs\": %llu,\n",
              r.lost_rate(), static_cast<unsigned long long>(r.epochs));
  std::printf("      \"fate_fingerprint\": \"0x%016llx\",\n",
              static_cast<unsigned long long>(r.fate_fingerprint));
  std::printf("      \"campaign_ms\": %.1f,\n", tr.wall_ms);
  std::printf("      \"chaos\": {\"link_failures\": %llu, "
              "\"switch_crashes\": %llu, \"recoveries\": %llu, "
              "\"ground_truth_violations\": %llu, "
              "\"tables_restored\": %s}\n",
              static_cast<unsigned long long>(r.chaos.link_failures),
              static_cast<unsigned long long>(r.chaos.switch_crashes),
              static_cast<unsigned long long>(r.chaos.link_recoveries +
                                              r.chaos.switch_recoveries),
              static_cast<unsigned long long>(
                  r.chaos.ground_truth_violations),
              r.chaos.tables_restored ? "true" : "false");
  std::printf("    }%s\n", trailing_comma ? "," : "");
}

}  // namespace

int main(int argc, char** argv) {
  aspen::obs::ObsConfig obs_config;
  obs_config.metrics = true;
  aspen::obs::configure(obs_config);

  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  // Quick: Fig. 3-class tree, >=10^5 flows.  Full: a k=16 fat tree with
  // >=10^6 flows across a 24-action schedule.
  const BenchConfig cfg = quick
                              ? BenchConfig{4, 6, "<0,2,0>", 120'000, 12, 1}
                              : BenchConfig{4, 16, "<0,0,0>", 1'200'000, 24, 2};

  const Topology topo = Topology::build(
      generate_tree(cfg.n, cfg.k, FaultToleranceVector::parse(cfg.ftv_text)));
  const LinkStateOverlay intact(topo);

  std::printf("{\n");
  std::printf("  \"experiment\": \"flow_plane\",\n");
  std::printf("  \"quick\": %s,\n", quick ? "true" : "false");
  std::printf("  \"config\": {\"n\": %d, \"k\": %d, \"ftv\": \"%s\"},\n",
              cfg.n, cfg.k, cfg.ftv_text);
  std::printf("  \"hosts\": %llu, \"switches\": %llu, \"links\": %llu,\n",
              static_cast<unsigned long long>(topo.num_hosts()),
              static_cast<unsigned long long>(topo.num_switches()),
              static_cast<unsigned long long>(topo.num_links()));
  std::printf("  \"flows\": %llu,\n",
              static_cast<unsigned long long>(cfg.flows));
  std::printf("  \"chaos_events\": %d,\n", cfg.events);
  std::printf("  \"host_threads\": %d,\n",
              aspen::parallel::effective_num_threads(0));

  bool ok = true;

  // ---- Headline: one epoch over healthy converged tables ---------------
  // Admission (untimed) then a single timed step walking every flow; the
  // delivered total is cross-checked against a serial plane.
  const RoutingState healthy =
      compute_updown_routes(topo, intact, DestGranularity::kEdge, 0);
  double step_ms = 0.0;
  std::uint64_t headline_delivered = 0;
  for (int rep = 0; rep < cfg.reps; ++rep) {
    FlowPlaneOptions plane_options;
    plane_options.base_seed = 2026;
    FlowPlane plane(topo, plane_options);
    (void)plane.admit_uniform(cfg.flows);
    const obs::PauseObs quiet;
    const double t0 = now_ms();
    const FlowStepStats stats = plane.step(healthy, intact);
    const double elapsed = now_ms() - t0;
    if (rep == 0 || elapsed < step_ms) step_ms = elapsed;
    headline_delivered = stats.delivered;
    if (stats.attempted != cfg.flows) ok = false;
  }
  const double flows_per_sec =
      static_cast<double>(cfg.flows) / (step_ms / 1000.0);
  std::printf("  \"healthy_step_ms\": %.1f,\n", step_ms);
  std::printf("  \"flows_per_sec\": %.0f,\n", flows_per_sec);
  std::printf("  \"healthy_delivered\": %llu,\n",
              static_cast<unsigned long long>(headline_delivered));
  if (headline_delivered != cfg.flows) ok = false;  // converged ⇒ no loss

  // ---- ANP vs LSP through the same fault/heal schedule -----------------
  // threads=1 is the reference; 2 and 4 must reproduce its fingerprint.
  const int sweep[] = {1, 2, 4};
  std::printf("  \"protocols\": {\n");
  double lost_rate[2] = {0.0, 0.0};
  const ProtocolKind kinds[] = {ProtocolKind::kAnp, ProtocolKind::kLsp};
  for (int p = 0; p < 2; ++p) {
    const ProtocolKind kind = kinds[p];
    TimedReport reference;
    bool identical = true;
    for (const int threads : sweep) {
      const TimedReport tr = run_campaign(kind, topo, cfg, threads);
      const FlowChaosReport& r = tr.report;
      if (r.admitted != cfg.flows ||
          r.admitted != r.delivered + r.lost + r.inflight) {
        ok = false;
      }
      if (threads == 1) {
        reference = tr;
      } else if (r.fate_fingerprint != reference.report.fate_fingerprint) {
        identical = false;
      }
    }
    if (!identical) ok = false;
    lost_rate[p] = reference.report.lost_rate();
    print_report(kind == ProtocolKind::kAnp ? "anp" : "lsp", reference,
                 /*trailing_comma=*/true);
    std::printf("    \"%s_threads_identical\": %s%s\n",
                kind == ProtocolKind::kAnp ? "anp" : "lsp",
                identical ? "true" : "false", p == 0 ? "," : "");
  }
  std::printf("  },\n");
  std::printf("  \"anp_minus_lsp_lost_rate\": %.6f,\n",
              lost_rate[0] - lost_rate[1]);
  std::printf("  \"identity_ok\": %s,\n", ok ? "true" : "false");
  std::printf("  \"peak_rss_mb\": %.1f,\n",
              static_cast<double>(peak_rss_kb()) / 1024.0);
  std::printf("  \"metrics\":\n%s\n",
              aspen::obs::metrics().to_json(2).c_str());
  std::printf("}\n");
  return ok ? 0 : 1;
}
