// Ablation — design choices DESIGN.md calls out:
//   1. Faithful §6 ANP (upward-only notices) vs the extended protocol that
//      also notifies downward: restoration coverage vs message cost.
//   2. Striping policy: standard vs rotated vs random vs parallel-heavy —
//      what fraction of single failures ANP can fully mask under each.
//   3. Redundancy placement (top/spread/bottom) at fixed host count.
#include <cstdio>

#include <limits>

#include "src/aspen/fixed_hosts.h"
#include "src/aspen/generator.h"
#include "src/proto/experiment.h"
#include "src/util/table.h"

namespace {

constexpr std::uint64_t kAllPairs = std::numeric_limits<std::uint64_t>::max();

aspen::SweepResult run(const aspen::Topology& topo, bool extended) {
  aspen::SweepOptions options;
  options.connectivity_flows = kAllPairs;
  options.anp.notify_children = extended;
  return sweep_link_failures(aspen::ProtocolKind::kAnp, topo, options);
}

}  // namespace

int main() {
  using namespace aspen;

  std::printf("== Ablation 1: faithful (upward-only) vs extended ANP ==\n\n");
  TextTable a1({"tree", "mode", "fully restored", "avg msgs", "avg reacted",
                "avg conv (ms)"});
  for (const auto& ftv : std::vector<std::vector<int>>{
           {1, 0, 0}, {0, 1, 0}, {3, 0, 0}}) {
    const int n = static_cast<int>(ftv.size()) + 1;
    const int k = ftv[0] >= 3 ? 8 : 4;
    const Topology topo =
        Topology::build(generate_tree(n, k, FaultToleranceVector(ftv)));
    for (const bool extended : {false, true}) {
      const SweepResult r = run(topo, extended);
      char restored[32];
      std::snprintf(restored, sizeof restored, "%lu/%lu",
                    static_cast<unsigned long>(r.fully_restored),
                    static_cast<unsigned long>(r.failures));
      a1.add_row({topo.params().to_string(),
                  extended ? "extended" : "faithful", restored,
                  format_double(r.messages.mean(), 1),
                  format_double(r.reacted.mean(), 1),
                  format_double(r.convergence_ms.mean(), 1)});
    }
  }
  std::printf("%s\n", a1.to_string().c_str());
  std::printf(
      "faithful ANP repairs every flow whose up*/down* apex reaches the\n"
      "absorbing level (the paper's cases 1-3); the extension also steers\n"
      "lower-apex climbs, closing the gap for a few extra messages.\n\n");

  std::printf("== Ablation 2: striping policy vs ANP effectiveness ==\n\n");
  TextTable a2({"striping", "mode", "fully restored", "avg reacted",
                "avg msgs"});
  for (const auto kind :
       {StripingKind::kStandard, StripingKind::kRotated,
        StripingKind::kRandom, StripingKind::kParallelHeavy}) {
    StripingConfig cfg;
    cfg.kind = kind;
    cfg.seed = 11;
    const Topology topo = Topology::build(
        generate_tree(4, 4, FaultToleranceVector{1, 0, 0}), cfg);
    for (const bool extended : {false, true}) {
      SweepOptions options;
      options.connectivity_flows = kAllPairs;
      options.anp.notify_children = extended;
      const SweepResult r =
          sweep_link_failures(ProtocolKind::kAnp, topo, options);
      char restored[32];
      std::snprintf(restored, sizeof restored, "%lu/%lu",
                    static_cast<unsigned long>(r.fully_restored),
                    static_cast<unsigned long>(r.failures));
      a2.add_row({to_string(kind), extended ? "extended" : "faithful",
                  restored, format_double(r.reacted.mean(), 1),
                  format_double(r.messages.mean(), 1)});
    }
  }
  std::printf("%s\n", a2.to_string().c_str());
  std::printf(
      "parallel-heavy wiring (Fig. 6(d)) violates the §7 striping\n"
      "requirement: faithful ANP's absorbing ancestors lose their alternate\n"
      "pod members, so it masks fewer failures and needs deeper waves; the\n"
      "extended protocol compensates by steering the climb instead.\n\n");

  std::printf(
      "== Ablation 3: redundancy placement at fixed host count (k=4, "
      "n_fat=3, x=2) ==\n\n");
  TextTable a3({"placement", "FTV", "fully restored", "avg conv (ms)",
                "avg reacted"});
  for (const auto placement :
       {RedundancyPlacement::kTop, RedundancyPlacement::kSpread,
        RedundancyPlacement::kBottom}) {
    const TreeParams params = design_fixed_host_tree(3, 4, 2, placement);
    const Topology topo = Topology::build(params);
    const SweepResult r = run(topo, /*extended=*/true);
    const char* name = placement == RedundancyPlacement::kTop ? "top"
                       : placement == RedundancyPlacement::kSpread
                           ? "spread"
                           : "bottom";
    char restored[32];
    std::snprintf(restored, sizeof restored, "%lu/%lu",
                  static_cast<unsigned long>(r.fully_restored),
                  static_cast<unsigned long>(r.failures));
    a3.add_row({name, params.ftv().to_string(), restored,
                format_double(r.convergence_ms.mean(), 1),
                format_double(r.reacted.mean(), 1)});
  }
  std::printf("%s\n", a3.to_string().c_str());
  return 0;
}
