// Experiment X12 (extension) — Monte Carlo survivability engine throughput
// and robustness.
//
// Headline: samples/second for a progressive correlated-failure campaign on
// a Fig. 3 tree (4-level, 6-port), across --threads=1/2/4, with the
// accumulator fingerprints proving byte-identity at every thread count.
// Three robustness checks ride along, each reported (and exit-affecting):
//
//   * resume  — a campaign checkpointed mid-run, serialized to text,
//     parsed back and resumed must reproduce the uninterrupted campaign's
//     accumulators byte-for-byte (kill-and-resume at a sample boundary);
//   * quarantine — a deliberately corrupted sample must be caught by the
//     paranoid audit, quarantined (counted, its index reported) and the
//     campaign must still complete every other sample;
//   * curve   — an independent-failure campaign's availability curve, the
//     science the throughput pays for (Wilson intervals included).
//
// Output is JSON (one document on stdout), bench_routing_scale idiom.
// `--quick` shrinks sample counts for CI smoke runs but keeps the headline
// campaign at >= 1e5 samples.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "src/analysis/survivability.h"
#include "src/aspen/generator.h"
#include "src/fault/failure_domains.h"
#include "src/obs/obs.h"
#include "src/topo/topology.h"
#include "src/util/parallel.h"

namespace {

using namespace aspen;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             // aspen-lint: allow(wall-clock) -- benchmark harness timing; measures host speed and never feeds a simulated result
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool g_all_ok = true;

const char* check(bool ok) {
  g_all_ok = g_all_ok && ok;
  return ok ? "true" : "false";
}

// ---- Headline: samples/sec across thread counts ------------------------

void run_throughput(const Topology& topo, const fault::FailureDomainModel& domains,
                    std::uint64_t samples) {
  std::printf("  \"throughput\": {\n");
  std::printf("    \"domains\": \"rack\", \"domain_count\": %llu, "
              "\"samples\": %llu,\n",
              static_cast<unsigned long long>(domains.size()),
              static_cast<unsigned long long>(samples));

  const std::vector<int> thread_counts{1, 2, 4};
  std::uint64_t serial_fingerprint = 0;
  double serial_ms = 0.0;
  SurvivabilityResult last;
  std::printf("    \"threads\": [\n");
  for (std::size_t t = 0; t < thread_counts.size(); ++t) {
    SurvivabilityOptions options;
    options.seed = 42;
    options.samples = samples;
    options.threads = thread_counts[t];
    options.audit_subsample = 8192;
    double wall_ms = 0.0;
    {
      const obs::PauseObs quiet;
      const double t0 = now_ms();
      last = run_survivability(topo, domains, options);
      wall_ms = now_ms() - t0;
    }
    const std::uint64_t fingerprint = last.acc.fingerprint();
    if (thread_counts[t] == 1) {
      serial_fingerprint = fingerprint;
      serial_ms = wall_ms;
    }
    std::printf("      {\"threads\": %d, \"wall_ms\": %.1f, "
                "\"samples_per_s\": %.0f, \"speedup_vs_serial\": %.2f, "
                "\"fingerprint\": \"%016llx\", \"identical_to_serial\": %s}%s\n",
                thread_counts[t], wall_ms,
                static_cast<double>(samples) / (wall_ms / 1000.0),
                serial_ms / wall_ms,
                static_cast<unsigned long long>(fingerprint),
                check(fingerprint == serial_fingerprint),
                t + 1 < thread_counts.size() ? "," : "");
  }
  std::printf("    ],\n");
  std::printf("    \"p_disconnect\": %.4f, \"mean_links_to_disconnect\": "
              "%.2f,\n",
              last.p_disconnect(), last.mean_links_to_disconnect());
  std::printf("    \"quarantined\": %llu, \"rollback_rebuilds\": %llu\n",
              static_cast<unsigned long long>(last.acc.quarantined),
              static_cast<unsigned long long>(last.acc.rollback_rebuilds));
  std::printf("  },\n");
}

// ---- Kill-and-resume byte identity -------------------------------------

void run_resume(const Topology& topo, const fault::FailureDomainModel& domains,
                std::uint64_t samples) {
  SurvivabilityOptions options;
  options.seed = 7;
  options.samples = samples;
  options.threads = 2;
  options.checkpoint_every = samples / 5;
  std::vector<SurvivabilityCheckpoint> checkpoints;
  options.on_checkpoint = [&](const SurvivabilityCheckpoint& cp) {
    checkpoints.push_back(cp);
  };
  const obs::PauseObs quiet;
  const SurvivabilityResult full = run_survivability(topo, domains, options);

  // "Kill" after the second checkpoint: round-trip it through the text
  // format, then resume a fresh campaign from the parsed token.
  const SurvivabilityCheckpoint parsed =
      SurvivabilityCheckpoint::parse(checkpoints.at(1).serialize());
  options.on_checkpoint = nullptr;
  const SurvivabilityResult resumed =
      run_survivability(topo, domains, options, &parsed);

  std::printf("  \"resume\": {\n");
  std::printf("    \"samples\": %llu, \"killed_at_sample\": %llu, "
              "\"checkpoints\": %llu,\n",
              static_cast<unsigned long long>(samples),
              static_cast<unsigned long long>(parsed.next_sample),
              static_cast<unsigned long long>(checkpoints.size()));
  std::printf("    \"fingerprint_full\": \"%016llx\", "
              "\"fingerprint_resumed\": \"%016llx\",\n",
              static_cast<unsigned long long>(full.acc.fingerprint()),
              static_cast<unsigned long long>(resumed.acc.fingerprint()));
  std::printf("    \"byte_identical\": %s\n",
              check(full.acc == resumed.acc));
  std::printf("  },\n");
}

// ---- Quarantine under deliberate corruption ----------------------------

void run_quarantine(const Topology& topo,
                    const fault::FailureDomainModel& domains,
                    std::uint64_t samples) {
  SurvivabilityOptions options;
  options.seed = 13;
  options.samples = samples;
  options.threads = 2;
  options.audit_subsample = 0;  // only the forced audit on the bad sample
  options.corrupt_sample = samples / 3;
  const obs::PauseObs quiet;
  const SurvivabilityResult result =
      run_survivability(topo, domains, options);

  const bool caught =
      result.acc.quarantined == 1 &&
      result.acc.quarantined_indices.size() == 1 &&
      result.acc.quarantined_indices.front() == options.corrupt_sample;
  std::printf("  \"quarantine\": {\n");
  std::printf("    \"samples\": %llu, \"corrupt_sample\": %llu,\n",
              static_cast<unsigned long long>(samples),
              static_cast<unsigned long long>(options.corrupt_sample));
  std::printf("    \"quarantined\": %llu, \"committed\": %llu,\n",
              static_cast<unsigned long long>(result.acc.quarantined),
              static_cast<unsigned long long>(result.acc.committed_samples));
  std::printf("    \"corrupt_sample_caught\": %s, "
              "\"campaign_completed\": %s\n",
              check(caught),
              check(result.samples == samples));
  std::printf("  },\n");
}

// ---- Availability curve (independent failures) -------------------------

void run_curve(const Topology& topo, const char* ftv_text,
               std::uint64_t samples, std::uint32_t max_steps,
               bool trailing_comma) {
  SurvivabilityOptions options;
  options.seed = 3;
  options.samples = samples;
  options.max_steps = max_steps;
  options.threads = 0;
  const obs::PauseObs quiet;
  const SurvivabilityResult result = run_survivability(topo, options);

  std::printf("    {\n");
  std::printf("      \"ftv\": \"%s\", \"samples\": %llu, \"max_steps\": %u, "
              "\"links\": %llu,\n",
              ftv_text, static_cast<unsigned long long>(samples), max_steps,
              static_cast<unsigned long long>(result.domain_count));
  std::printf("      \"p_disconnect\": %.4f, "
              "\"mean_links_to_disconnect\": %.2f,\n",
              result.p_disconnect(), result.mean_links_to_disconnect());
  std::printf("      \"availability_mtbf2190h_mttr4h\": %.6f,\n",
              availability_from_survivability(result, 2190.0, 4.0));
  std::printf("      \"curve\": [\n");
  const std::vector<SurvivabilityCurvePoint> curve = result.curve();
  for (std::size_t i = 0; i < curve.size(); ++i) {
    std::printf("        {\"step\": %u, \"links\": %.1f, \"p_connected\": "
                "%.4f, \"ci\": [%.4f, %.4f], \"reachable\": %.4f}%s\n",
                curve[i].step, curve[i].mean_failed_links,
                curve[i].p_connected, curve[i].ci.lo, curve[i].ci.hi,
                curve[i].mean_reachable_fraction,
                i + 1 < curve.size() ? "," : "");
  }
  std::printf("      ]\n");
  std::printf("    }%s\n", trailing_comma ? "," : "");
}

}  // namespace

int main(int argc, char** argv) {
  aspen::obs::ObsConfig obs_config;
  obs_config.metrics = true;
  aspen::obs::configure(obs_config);

  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  // All campaigns run on Fig. 3 trees: 4-level, 6-port Aspen trees.  The
  // headline tree is <0,0,2> — fault tolerance at the top level, 63
  // switches, 216 links, 18 racks — a representative mid-cost point of the
  // Fig. 3 design space.
  const Topology fig3 =
      Topology::build(generate_tree(4, 6, FaultToleranceVector({0, 0, 2})));
  const fault::FailureDomainModel racks =
      fault::FailureDomainModel::racks(fig3);

  std::printf("{\n");
  std::printf("  \"experiment\": \"survivability\",\n");
  std::printf("  \"quick\": %s,\n", quick ? "true" : "false");
  std::printf("  \"hardware_threads\": %d,\n",
              aspen::parallel::effective_num_threads(0));
  std::printf("  \"tree\": {\"n\": 4, \"k\": 6, \"ftv\": \"<0,0,2>\", "
              "\"switches\": %llu, \"edge_switches\": %llu},\n",
              static_cast<unsigned long long>(fig3.num_switches()),
              static_cast<unsigned long long>(
                  fig3.num_hosts() /
                  static_cast<std::uint64_t>(fig3.params().k / 2)));

  run_throughput(fig3, racks, quick ? 100'000 : 200'000);
  run_resume(fig3, racks, quick ? 20'000 : 50'000);
  run_quarantine(fig3, racks, quick ? 4'096 : 16'384);

  std::printf("  \"curves\": [\n");
  const std::uint64_t curve_samples = quick ? 1'000 : 5'000;
  if (quick) {
    run_curve(fig3, "<0,0,2>", curve_samples, 16, false);
  } else {
    const Topology fat =
        Topology::build(generate_tree(4, 6, FaultToleranceVector({0, 0, 0})));
    const Topology mid =
        Topology::build(generate_tree(4, 6, FaultToleranceVector({2, 0, 0})));
    run_curve(fat, "<0,0,0>", curve_samples, 16, true);
    run_curve(mid, "<2,0,0>", curve_samples, 16, true);
    run_curve(fig3, "<0,0,2>", curve_samples, 16, false);
  }
  std::printf("  ],\n");

  std::printf("  \"all_checks_passed\": %s,\n", g_all_ok ? "true" : "false");
  std::printf("  \"metrics\":\n%s\n",
              aspen::obs::metrics().to_json(2).c_str());
  std::printf("}\n");
  return g_all_ok ? 0 : 2;
}
