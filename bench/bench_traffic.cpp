// Experiment X1 (extension) — bandwidth properties across the Aspen design
// space.  The paper keeps every tree non-oversubscribed (k/2 uplinks per L1
// switch for k/2 hosts) and §1 credits fat trees with "full bisection
// bandwidth [and] diverse yet short paths"; this bench quantifies both for
// every 4-level 6-port Aspen tree, and then shows how a failure degrades
// throughput with and without redundancy.
#include <cstdio>

#include "src/aspen/enumerate.h"
#include "src/aspen/generator.h"
#include "src/proto/anp.h"
#include "src/routing/paths.h"
#include "src/routing/updown.h"
#include "src/traffic/load.h"
#include "src/traffic/patterns.h"
#include "src/util/table.h"

namespace {

using namespace aspen;

LoadResult run_permutation(const Topology& topo, const Router& router,
                           const LinkStateOverlay& actual,
                           std::uint64_t seed) {
  Rng rng(seed);
  const auto flows = permutation_traffic(topo, rng);
  return assign_load(topo, router, actual, flows);
}

}  // namespace

int main() {
  using namespace aspen;

  std::printf(
      "== Permutation throughput and path diversity across all n=4, k=6 "
      "Aspen trees ==\n(max-min fair rates, unit capacities, ECMP-pinned "
      "paths, seed-averaged)\n\n");

  TextTable table({"FTV", "hosts", "norm. throughput", "min rate",
                   "mean path links", "cross-tree paths"});
  for (const TreeParams& params : enumerate_trees(4, 6)) {
    const Topology topo = Topology::build(params);
    const RoutingState routes = compute_updown_routes(topo);
    const TableRouter router(routes);
    const LinkStateOverlay intact(topo);

    double throughput = 0.0;
    double min_rate = 1.0;
    double path_links = 0.0;
    const int kSeeds = 3;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const LoadResult r = run_permutation(topo, router, intact, seed);
      throughput += r.normalized_throughput();
      min_rate = std::min(min_rate, r.min_rate);
      path_links += r.mean_path_links;
    }
    const std::uint64_t diversity = count_shortest_paths(
        topo, routes, HostId{0},
        HostId{static_cast<std::uint32_t>(topo.num_hosts() - 1)});

    table.add_row({params.ftv().to_string(),
                   std::to_string(params.num_hosts()),
                   format_double(throughput / kSeeds, 3),
                   format_double(min_rate, 3),
                   format_double(path_links / kSeeds, 2),
                   std::to_string(diversity)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "every FTV keeps the 1:1 subscription ratio, so the rates above are\n"
      "limited only by single-path ECMP hash collisions (the well-known\n"
      "~40-60%% permutation throughput of hash-based ECMP), not by\n"
      "structural oversubscription — and they *improve* with fault\n"
      "tolerance as the DCC multiplies path diversity.  The scalability\n"
      "cost of fault tolerance is host count, not per-host bandwidth.\n\n");

  std::printf(
      "== Throughput under a single failure: fat tree vs Aspen <1,0,0>, "
      "k=4 ==\n(hotspot incast into the pod below the failure; ANP-patched "
      "tables)\n\n");
  TextTable degraded({"tree", "state", "aggregate", "min rate",
                      "unroutable"});
  for (const auto& ftv : std::vector<std::vector<int>>{{0, 0, 0}, {1, 0, 0}}) {
    const Topology topo =
        Topology::build(generate_tree(4, 4, FaultToleranceVector(ftv)));
    Rng rng(5);
    const auto flows = hotspot_traffic(topo, 0, rng);

    const RoutingState healthy_routes = compute_updown_routes(topo);
    const LinkStateOverlay intact(topo);
    const LoadResult healthy = assign_load(
        topo, TableRouter(healthy_routes), intact, flows);
    degraded.add_row({topo.params().ftv().to_string(), "healthy",
                      format_double(healthy.aggregate_throughput, 2),
                      format_double(healthy.min_rate, 3),
                      std::to_string(healthy.flows_unroutable)});

    AnpOptions extended;
    extended.notify_children = true;
    AnpSimulation anp(topo, DelayModel{}, extended);
    // Fail a link on the hot pod's downward path (L2 switch above edge 0).
    const SwitchId edge0 = topo.switch_at(1, 0);
    const auto& uplink = topo.up_neighbors(edge0)[0];
    (void)anp.simulate_link_failure(uplink.link);
    const LoadResult hurt =
        assign_load(topo, TableRouter(anp.tables()), anp.overlay(), flows);
    degraded.add_row({topo.params().ftv().to_string(), "1 failure + ANP",
                      format_double(hurt.aggregate_throughput, 2),
                      format_double(hurt.min_rate, 3),
                      std::to_string(hurt.flows_unroutable)});
  }
  std::printf("%s\n", degraded.to_string().c_str());
  return 0;
}
