// Experiment X2 (extension) — the §1 availability arithmetic, end to end.
//
// First reproduces the paper's budget numbers (5 nines ≈ 5 minutes/year ≈
// 30 failures × 10 s), then applies the event-based accounting to fat/Aspen
// pairs: more links means more failures per year, but windows measured in
// tens of milliseconds instead of seconds buy the fabric several nines.
#include <cstdio>

#include "src/analysis/availability.h"
#include "src/analysis/convergence.h"
#include "src/aspen/fixed_hosts.h"
#include "src/aspen/generator.h"
#include "src/util/table.h"

int main() {
  using namespace aspen;

  std::printf("== §1 budget arithmetic ==\n");
  std::printf("5-nines downtime budget : %.1f s/year (%.2f minutes)\n",
              downtime_budget_s(0.99999), downtime_budget_s(0.99999) / 60.0);
  std::printf(
      "failures affordable at 10 s re-convergence: %.1f  (paper: ~30)\n\n",
      affordable_failures_per_year(0.99999, 10.0));

  const double rate = 0.25;  // link failures per link per year (Gill et
                             // al. observe most links failing rarely but
                             // fleets of 10^5 links failing constantly)
  std::printf(
      "== Expected availability, fat+LSP vs fixed-host Aspen+ANP ==\n"
      "(%.2f failures/link/year; window = mean §9.1 distance at §9.2 "
      "rates)\n\n",
      rate);

  TextTable table({"pair", "links fat/aspen", "failures/yr fat/aspen",
                   "downtime fat (s/yr)", "downtime aspen (s/yr)",
                   "nines fat", "nines aspen"});
  for (const auto& [k, n] : std::vector<std::pair<int, int>>{
           {16, 3}, {64, 3}, {16, 4}, {32, 4}, {16, 5}}) {
    const TreeParams fat = fat_tree(n, k);
    const TreeParams aspen = design_fixed_host_tree(n, k, 1);
    const AvailabilityEstimate f = estimate_availability(fat, rate);
    const AvailabilityEstimate a = estimate_availability(aspen, rate);
    char label[48];
    std::snprintf(label, sizeof label, "k=%d n=%d/%d", k, n, n + 1);
    char links[48];
    std::snprintf(links, sizeof links, "%lu / %lu",
                  static_cast<unsigned long>(fat.total_links()),
                  static_cast<unsigned long>(aspen.total_links()));
    char fails[48];
    std::snprintf(fails, sizeof fails, "%.0f / %.0f", f.failures_per_year,
                  a.failures_per_year);
    table.add_row({label, links, fails,
                   format_double(f.downtime_s_per_year, 1),
                   format_double(a.downtime_s_per_year, 1),
                   format_double(f.nines, 2), format_double(a.nines, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf(
      "== Nines as a function of the FTV (n=4, k=6, fixed network size) "
      "==\n\n");
  TextTable ftv_table({"FTV", "hosts", "mean window (ms)",
                       "downtime (s/yr)", "nines"});
  for (const auto& entries : std::vector<std::vector<int>>{
           {0, 0, 0}, {0, 0, 2}, {0, 2, 0}, {2, 0, 0}, {2, 2, 2}}) {
    const TreeParams tree =
        generate_tree(4, 6, FaultToleranceVector(entries));
    const AvailabilityEstimate e = estimate_availability(tree, rate);
    ftv_table.add_row({tree.ftv().to_string(),
                       std::to_string(tree.num_hosts()),
                       format_double(e.reaction_s * 1000.0, 1),
                       format_double(e.downtime_s_per_year, 2),
                       format_double(e.nines, 2)});
  }
  std::printf("%s\n", ftv_table.to_string().c_str());
  std::printf(
      "the paper's conclusion in one table: restricting failures is\n"
      "hopeless at this scale, but shrinking each failure's window from\n"
      "LSA-rate seconds to ANP-rate milliseconds buys multiple nines.\n\n");

  // §10 tie-in: Gill et al. find core links fail most, "align[ing] well
  // with the subset of Aspen trees highlighted in §8.1" — put the
  // redundancy where the failures are.
  std::printf(
      "== Where to place redundancy when core links fail most (n=4, k=6, "
      "54 hosts each) ==\n(annual rates by level: hosts 0.0, L2 0.05, L3 "
      "0.1, L4 0.5)\n\n");
  const std::vector<double> core_heavy{0.0, 0.0, 0.05, 0.1, 0.5};
  TextTable placement({"FTV", "downtime (s/yr)", "nines"});
  for (const auto& entries : std::vector<std::vector<int>>{
           {2, 0, 0}, {0, 2, 0}, {0, 0, 2}}) {
    const TreeParams tree =
        generate_tree(4, 6, FaultToleranceVector(entries));
    const AvailabilityEstimate e =
        estimate_availability_per_level(tree, core_heavy);
    placement.add_row({tree.ftv().to_string(),
                       format_double(e.downtime_s_per_year, 2),
                       format_double(e.nines, 2)});
  }
  std::printf("%s\n", placement.to_string().c_str());
  return 0;
}
