// Experiment X2 (extension) — the §1 availability arithmetic, end to end.
//
// First reproduces the paper's budget numbers (5 nines ≈ 5 minutes/year ≈
// 30 failures × 10 s), then applies the event-based accounting to fat/Aspen
// pairs: more links means more failures per year, but windows measured in
// tens of milliseconds instead of seconds buy the fabric several nines.
#include <cstdio>
#include <cstring>

#include <span>

#include "src/analysis/availability.h"
#include "src/analysis/convergence.h"
#include "src/analysis/survivability.h"
#include "src/aspen/fixed_hosts.h"
#include "src/aspen/generator.h"
#include "src/routing/delta.h"
#include "src/routing/updown.h"
#include "src/topo/topology.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace aspen;

  bool self_check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--self-check") == 0) self_check = true;
  }

  std::printf("== §1 budget arithmetic ==\n");
  std::printf("5-nines downtime budget : %.1f s/year (%.2f minutes)\n",
              downtime_budget_s(0.99999), downtime_budget_s(0.99999) / 60.0);
  std::printf(
      "failures affordable at 10 s re-convergence: %.1f  (paper: ~30)\n\n",
      affordable_failures_per_year(0.99999, 10.0));

  const double rate = 0.25;  // link failures per link per year (Gill et
                             // al. observe most links failing rarely but
                             // fleets of 10^5 links failing constantly)
  std::printf(
      "== Expected availability, fat+LSP vs fixed-host Aspen+ANP ==\n"
      "(%.2f failures/link/year; window = mean §9.1 distance at §9.2 "
      "rates)\n\n",
      rate);

  TextTable table({"pair", "links fat/aspen", "failures/yr fat/aspen",
                   "downtime fat (s/yr)", "downtime aspen (s/yr)",
                   "nines fat", "nines aspen"});
  for (const auto& [k, n] : std::vector<std::pair<int, int>>{
           {16, 3}, {64, 3}, {16, 4}, {32, 4}, {16, 5}}) {
    const TreeParams fat = fat_tree(n, k);
    const TreeParams aspen = design_fixed_host_tree(n, k, 1);
    const AvailabilityEstimate f = estimate_availability(fat, rate);
    const AvailabilityEstimate a = estimate_availability(aspen, rate);
    char label[48];
    std::snprintf(label, sizeof label, "k=%d n=%d/%d", k, n, n + 1);
    char links[48];
    std::snprintf(links, sizeof links, "%lu / %lu",
                  static_cast<unsigned long>(fat.total_links()),
                  static_cast<unsigned long>(aspen.total_links()));
    char fails[48];
    std::snprintf(fails, sizeof fails, "%.0f / %.0f", f.failures_per_year,
                  a.failures_per_year);
    table.add_row({label, links, fails,
                   format_double(f.downtime_s_per_year, 1),
                   format_double(a.downtime_s_per_year, 1),
                   format_double(f.nines, 2), format_double(a.nines, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf(
      "== Nines as a function of the FTV (n=4, k=6, fixed network size) "
      "==\n\n");
  TextTable ftv_table({"FTV", "hosts", "mean window (ms)",
                       "downtime (s/yr)", "nines"});
  for (const auto& entries : std::vector<std::vector<int>>{
           {0, 0, 0}, {0, 0, 2}, {0, 2, 0}, {2, 0, 0}, {2, 2, 2}}) {
    const TreeParams tree =
        generate_tree(4, 6, FaultToleranceVector(entries));
    const AvailabilityEstimate e = estimate_availability(tree, rate);
    ftv_table.add_row({tree.ftv().to_string(),
                       std::to_string(tree.num_hosts()),
                       format_double(e.reaction_s * 1000.0, 1),
                       format_double(e.downtime_s_per_year, 2),
                       format_double(e.nines, 2)});
  }
  std::printf("%s\n", ftv_table.to_string().c_str());
  std::printf(
      "the paper's conclusion in one table: restricting failures is\n"
      "hopeless at this scale, but shrinking each failure's window from\n"
      "LSA-rate seconds to ANP-rate milliseconds buys multiple nines.\n\n");

  // §10 tie-in: Gill et al. find core links fail most, "align[ing] well
  // with the subset of Aspen trees highlighted in §8.1" — put the
  // redundancy where the failures are.
  std::printf(
      "== Where to place redundancy when core links fail most (n=4, k=6, "
      "54 hosts each) ==\n(annual rates by level: hosts 0.0, L2 0.05, L3 "
      "0.1, L4 0.5)\n\n");
  const std::vector<double> core_heavy{0.0, 0.0, 0.05, 0.1, 0.5};
  TextTable placement({"FTV", "downtime (s/yr)", "nines"});
  for (const auto& entries : std::vector<std::vector<int>>{
           {2, 0, 0}, {0, 2, 0}, {0, 0, 2}}) {
    const TreeParams tree =
        generate_tree(4, 6, FaultToleranceVector(entries));
    const AvailabilityEstimate e =
        estimate_availability_per_level(tree, core_heavy);
    placement.add_row({tree.ftv().to_string(),
                       format_double(e.downtime_s_per_year, 2),
                       format_double(e.nines, 2)});
  }
  std::printf("%s\n", placement.to_string().c_str());

  // ---- Measured availability via the incremental survivability engine ---
  // The tables above are closed-form arithmetic over expected failure
  // counts and windows.  The Monte Carlo engine measures the same quantity
  // structurally: progressive random link failures applied as warm
  // DeltaSession patches (never a from-scratch recompute on the happy
  // path), disconnection observed from the actual up*/down* tables.
  // `--self-check` additionally asserts, per tree, that an incrementally
  // patched state is digest-equal to a full recompute of the same overlay.
  std::printf(
      "== Measured availability (Monte Carlo, incremental engine; n=4, "
      "k=6) ==\n(1,000 samples/tree, independent link failures, MTBF "
      "2190 h, MTTR 4 h)\n\n");
  bool checks_ok = true;
  TextTable measured({"FTV", "links", "P(disc <= 12 links)",
                      "mean links to disc", "availability"});
  for (const auto& entries : std::vector<std::vector<int>>{
           {0, 0, 0}, {0, 0, 2}, {0, 2, 0}, {2, 0, 0}, {2, 2, 2}}) {
    const TreeParams tree = generate_tree(4, 6, FaultToleranceVector(entries));
    const Topology topo = Topology::build(tree);
    SurvivabilityOptions options;
    options.seed = 2026;
    options.samples = 1'000;
    options.max_steps = 12;
    const SurvivabilityResult result = run_survivability(topo, options);
    measured.add_row(
        {tree.ftv().to_string(), std::to_string(topo.num_links()),
         format_double(result.p_disconnect(), 3),
         format_double(result.mean_links_to_disconnect(), 1),
         format_double(availability_from_survivability(result, 2190.0, 4.0),
                       6)});
    if (self_check) {
      // Fail the first uplink of every third edge switch, then compare the
      // patched state against a from-scratch recompute of the overlay.
      routing::DeltaSession session(topo, DestGranularity::kEdge);
      std::vector<LinkId> faults;
      for (std::uint64_t e = 0; e < topo.num_switches(); e += 3) {
        const SwitchId s{static_cast<std::uint32_t>(e)};
        if (topo.level_of(s) != 1) break;
        faults.push_back(topo.up_neighbors(s)[0].link);
      }
      session.apply(faults);
      const RoutingState fresh = compute_updown_routes(
          topo, session.overlay(), DestGranularity::kEdge, 1);
      const bool digests_equal =
          tables_match_by_digest(session.state(), fresh);
      const bool restored = session.rollback();
      std::printf("self-check %s: incremental vs full recompute %s, "
                  "rollback %s\n",
                  tree.ftv().to_string().c_str(),
                  digests_equal ? "digest-equal" : "MISMATCH",
                  restored ? "restored" : "MISMATCH (rebuilt)");
      checks_ok = checks_ok && digests_equal && restored;
    }
  }
  std::printf("%s\n", measured.to_string().c_str());
  std::printf(
      "the measured column agrees with the closed-form story: every FTV\n"
      "survives the single-failure regime; the engine's contribution is\n"
      "the tail — how many simultaneous failures each design absorbs.\n");
  return checks_ok ? 0 : 3;
}
