// Experiment C1 — the §8.1 "practical Aspen tree" claims:
//   * "an Aspen tree with n=4, k=16 and FTV=<1,0,0> supports only half as
//      many hosts as an n=4, k=16 fat tree, but converges 80% faster"
//   * updates only travel upward (never global);
//   * the §8.1 placement heuristic (<x,0,0,x,0,0> for length 6, budget 2).
#include <cstdio>

#include "src/analysis/convergence.h"
#include "src/aspen/generator.h"
#include "src/aspen/recommend.h"
#include "src/util/table.h"

int main() {
  using namespace aspen;

  std::printf("== §8.1 practical tree: n=4, k=16, FTV=<1,0,0> ==\n\n");
  const TreeParams fat = fat_tree(4, 16);
  const TreeParams vl2 = top_level_redundant_tree(4, 16);

  const double fat_hops = average_update_propagation(fat.ftv());
  const double vl2_hops = average_update_propagation(vl2.ftv());

  TextTable table({"tree", "hosts", "switches", "avg conv (hops)",
                   "est. conv (ms, ANP/LSP)"});
  table.add_row({"fat <0,0,0>", std::to_string(fat.num_hosts()),
                 std::to_string(fat.total_switches()),
                 format_double(fat_hops, 2),
                 format_double(estimate_convergence_ms(fat_hops,
                                                       ProtocolKind::kLsp),
                               1) +
                     " (LSP)"});
  table.add_row({"aspen <1,0,0>", std::to_string(vl2.num_hosts()),
                 std::to_string(vl2.total_switches()),
                 format_double(vl2_hops, 2),
                 format_double(estimate_convergence_ms(vl2_hops,
                                                       ProtocolKind::kAnp),
                               1) +
                     " (ANP)"});
  std::printf("%s\n", table.to_string().c_str());

  std::printf("host ratio            : %.2f (paper: half)\n",
              static_cast<double>(vl2.num_hosts()) /
                  static_cast<double>(fat.num_hosts()));
  std::printf("convergence reduction : %.0f%% (paper: ~80%% faster)\n",
              100.0 * (1.0 - vl2_hops / fat_hops));

  std::printf("\n== §8.1 placement heuristic ==\n");
  for (const auto& [n, budget] :
       std::vector<std::pair<int, int>>{{7, 2}, {7, 3}, {5, 2}, {6, 2}}) {
    const auto ftv = recommend_ftv_placement(n, budget);
    const PlacementQuality q = evaluate_placement(ftv);
    std::printf(
        "n=%d budget=%d -> %-16s covered=%s longest zero run=%d avg "
        "hops=%.2f\n",
        n, budget, ftv.to_string().c_str(), q.covered ? "yes" : "no",
        q.longest_zero_run, q.average_hops);
  }

  std::printf("\n== Ranked single-redundant-level placements, n=4, k=4 ==\n");
  for (const auto& ftv : rank_placements(4, 4, 1)) {
    const PlacementQuality q = evaluate_placement(ftv);
    std::printf("%-10s covered=%-3s avg hops=%.2f\n", ftv.to_string().c_str(),
                q.covered ? "yes" : "no", q.average_hops);
  }
  return 0;
}
