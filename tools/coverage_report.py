#!/usr/bin/env python3
"""Aggregate gcov line coverage and enforce the repo's coverage gates.

Usage: coverage_report.py <repo_root> <coverage_build_dir> [--record-baseline]

Walks the build tree for .gcda counters, asks gcov for JSON intermediate
data, merges per-line hit counts across translation units (a line is
covered if any TU executed it), and reports line coverage for every file
under src/.  The gates that fail the run:

  * each entry in GATED (a directory prefix or a single file) below its
    gate percentage — currently src/obs/, src/lint/, src/serve/, the
    memory-layout hot paths src/topo/, src/routing/ and src/traffic/,
    and the survivability engine's sources at 90%
  * repo-wide src/ coverage more than REGRESSION_SLACK (2 points) below
    the recorded baseline in tools/coverage_baseline.txt

--record-baseline rewrites the baseline file with the measured repo-wide
coverage instead of gating against it; commit the result like any other
source change.

The full per-file table is written to <build>/coverage_report.txt so CI
can upload it as an artifact.
"""

import json
import os
import subprocess
import sys

# Path prefix (directory) or exact file -> minimum line coverage %.
GATED = {
    os.path.join("src", "obs") + os.sep: 90.0,
    os.path.join("src", "lint") + os.sep: 90.0,
    os.path.join("src", "serve") + os.sep: 90.0,
    os.path.join("src", "topo") + os.sep: 90.0,
    os.path.join("src", "routing") + os.sep: 90.0,
    os.path.join("src", "traffic") + os.sep: 90.0,
    os.path.join("src", "analysis", "survivability.cpp"): 90.0,
    os.path.join("src", "fault", "failure_domains.cpp"): 90.0,
}
REGRESSION_SLACK = 2.0


def gcov_json(gcda, build):
    """Returns the parsed gcov JSON documents for one .gcda file."""
    result = subprocess.run(
        ["gcov", "--json-format", "--stdout", gcda],
        capture_output=True,
        text=True,
        cwd=build,
        check=False,
    )
    docs = []
    for line in result.stdout.splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        try:
            docs.append(json.loads(line))
        except json.JSONDecodeError:
            pass
    return docs


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    record_baseline = "--record-baseline" in sys.argv
    if len(args) != 2:
        sys.exit(__doc__)
    root = os.path.abspath(args[0])
    build = os.path.abspath(args[1])
    baseline_path = os.path.join(root, "tools", "coverage_baseline.txt")

    gcda_files = []
    for dirpath, _, files in os.walk(build):
        gcda_files.extend(
            os.path.join(dirpath, f) for f in files if f.endswith(".gcda")
        )
    if not gcda_files:
        sys.exit(f"no .gcda files under {build} — build with --coverage "
                 "and run the tests first")

    # file -> line -> hit (merged across TUs).
    lines_by_file = {}
    for gcda in sorted(gcda_files):
        for doc in gcov_json(gcda, build):
            for fobj in doc.get("files", []):
                fname = fobj.get("file", "")
                if not os.path.isabs(fname):
                    fname = os.path.normpath(os.path.join(root, fname))
                rel = os.path.relpath(fname, root)
                if not rel.startswith("src" + os.sep):
                    continue
                per_line = lines_by_file.setdefault(rel, {})
                for line in fobj.get("lines", []):
                    num = line.get("line_number")
                    hit = line.get("count", 0) > 0
                    per_line[num] = per_line.get(num, False) or hit

    if not lines_by_file:
        sys.exit("gcov produced no coverage for files under src/")

    def coverage(per_line):
        total = len(per_line)
        covered = sum(1 for hit in per_line.values() if hit)
        return covered, total

    report = ["file                                        covered   total      %"]
    all_covered = all_total = 0
    gated_counts = {gate: [0, 0] for gate in GATED}
    for rel in sorted(lines_by_file):
        covered, total = coverage(lines_by_file[rel])
        all_covered += covered
        all_total += total
        for gate in GATED:
            if rel == gate or (gate.endswith(os.sep) and
                               rel.startswith(gate)):
                gated_counts[gate][0] += covered
                gated_counts[gate][1] += total
        pct = 100.0 * covered / total if total else 100.0
        report.append(f"{rel:<44}{covered:>7}{total:>8}{pct:>7.1f}")

    repo_pct = 100.0 * all_covered / all_total
    report.append("")
    failures = []
    for gate, minimum in GATED.items():
        covered, total = gated_counts[gate]
        if total == 0:
            failures.append(f"no coverage data for {gate} — are its tests "
                            "in the build?")
            continue
        pct = 100.0 * covered / total
        report.append(f"{gate:<23}: {pct:.1f}% ({covered}/{total}), "
                      f"gate {minimum:.0f}%")
        if pct < minimum:
            failures.append(f"{gate} coverage {pct:.1f}% is below the "
                            f"{minimum:.0f}% gate")
    report.append(f"repo-wide src/ coverage: {repo_pct:.1f}% "
                  f"({all_covered}/{all_total})")

    if record_baseline:
        with open(baseline_path, "w") as f:
            f.write(f"{repo_pct:.1f}\n")
        report.append(f"baseline recorded: {repo_pct:.1f}%")
    else:
        try:
            with open(baseline_path) as f:
                baseline = float(f.read().strip())
        except (OSError, ValueError):
            failures.append(f"missing/unreadable baseline {baseline_path} — "
                            "run with --record-baseline once")
            baseline = None
        if baseline is not None:
            report.append(f"recorded baseline      : {baseline:.1f}% "
                          f"(allowed slack {REGRESSION_SLACK:.1f})")
            if repo_pct < baseline - REGRESSION_SLACK:
                failures.append(
                    f"repo-wide coverage {repo_pct:.1f}% regressed more than "
                    f"{REGRESSION_SLACK:.1f} points from the recorded "
                    f"baseline {baseline:.1f}%")

    for failure in failures:
        report.append(f"GATE FAILED: {failure}")
    if not failures:
        report.append("coverage gates passed")

    text = "\n".join(report) + "\n"
    with open(os.path.join(build, "coverage_report.txt"), "w") as f:
        f.write(text)
    print(text)
    sys.exit(1 if failures else 0)


if __name__ == "__main__":
    main()
