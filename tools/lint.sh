#!/usr/bin/env bash
# Static-analysis driver, three stages:
#
#   1. aspen-lint (tools/linter) — the repo's own determinism & contracts
#      analyzer; built from this tree, so it always runs.  Writes the
#      machine-readable report to <build-dir>/aspen_lint_report.json and
#      gates on zero unsuppressed findings.
#   2. clang-tidy over the compilation database (profile in .clang-tidy).
#   3. clang-format drift check when a .clang-format file exists.
#
# By default missing *external* tools (clang-tidy, clang-format) are
# reported and skipped so the script is safe to call from environments that
# only ship the compiler.  With --strict a missing tool is a FAILURE, not a
# skip — CI uses this so a silently absent linter can never turn the lint
# job green.
#
# Usage: tools/lint.sh [--strict] [build-dir]   (default build dir: build)
set -euo pipefail

cd "$(dirname "$0")/.."

strict=0
build_dir="build"
for arg in "$@"; do
  case "${arg}" in
    --strict) strict=1 ;;
    --*)
      echo "lint: unknown flag '${arg}'" >&2
      echo "usage: tools/lint.sh [--strict] [build-dir]" >&2
      exit 64
      ;;
    *) build_dir="${arg}" ;;
  esac
done

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "lint: ${build_dir}/compile_commands.json not found; configuring..."
  cmake -S . -B "${build_dir}" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# Every first-party translation unit; generated/third-party code (anything
# outside these roots) never enters the database with these prefixes.
# tests/lint_corpus/ holds deliberately-broken lint fixtures that are never
# compiled — keep them out of every stage.
mapfile -t sources < <(git ls-files \
  'src/**/*.cpp' 'tools/*.cpp' 'tests/*.cpp' 'examples/*.cpp' 'bench/*.cpp' \
  | grep -v '^tests/lint_corpus/')
mapfile -t headers < <(git ls-files 'src/**/*.h' 'tools/*.h' 'tests/*.h' \
  | grep -v '^tests/lint_corpus/')

status=0

# ---- stage 1: aspen-lint (first-party, so "missing" means "not built") ----
aspen_lint="${build_dir}/tools/linter/aspen-lint"
if [[ ! -x "${aspen_lint}" ]]; then
  echo "lint: ${aspen_lint} not built; building..."
  if ! cmake --build "${build_dir}" --target aspen_lint_cli >/dev/null; then
    echo "lint: FAILED to build aspen-lint" >&2
    exit 1
  fi
fi
echo "lint: aspen-lint over $((${#sources[@]} + ${#headers[@]})) files"
"${aspen_lint}" --json="${build_dir}/aspen_lint_report.json" \
  "${sources[@]}" "${headers[@]}" || status=1

# ---- stage 2: clang-tidy ---------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  echo "lint: clang-tidy over ${#sources[@]} translation units"
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p "${build_dir}" -quiet "${sources[@]}" || status=1
  else
    for source in "${sources[@]}"; do
      clang-tidy -p "${build_dir}" --quiet "${source}" || status=1
    done
  fi
elif [[ "${strict}" -eq 1 ]]; then
  echo "lint: FAILED — clang-tidy not installed and --strict requested" >&2
  status=1
else
  echo "lint: clang-tidy not installed; skipping static analysis"
fi

# ---- stage 3: clang-format -------------------------------------------------
if [[ -f .clang-format ]] && command -v clang-format >/dev/null 2>&1; then
  echo "lint: clang-format drift check"
  clang-format --dry-run --Werror "${sources[@]}" "${headers[@]}" || status=1
elif [[ "${strict}" -eq 1 && -f .clang-format ]]; then
  echo "lint: FAILED — clang-format not installed and --strict requested" >&2
  status=1
else
  echo "lint: no .clang-format profile or tool; skipping format check"
fi

exit "${status}"
