#!/usr/bin/env bash
# Static-analysis driver: clang-tidy (profile in .clang-tidy) over the
# compilation database, plus a clang-format drift check when a .clang-format
# file exists.  Degrades gracefully: missing tools are reported and skipped
# with exit 0, so the script is safe to call from environments that only
# ship the compiler (CI installs the tools and gets the full run).
#
# Usage: tools/lint.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "lint: ${build_dir}/compile_commands.json not found; configuring..."
  cmake -S . -B "${build_dir}" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# Every first-party translation unit; generated/third-party code (anything
# outside these roots) never enters the database with these prefixes.
mapfile -t sources < <(git ls-files \
  'src/**/*.cpp' 'tools/*.cpp' 'tests/*.cpp' 'examples/*.cpp' 'bench/*.cpp')

status=0

if command -v clang-tidy >/dev/null 2>&1; then
  echo "lint: clang-tidy over ${#sources[@]} translation units"
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p "${build_dir}" -quiet "${sources[@]}" || status=1
  else
    for source in "${sources[@]}"; do
      clang-tidy -p "${build_dir}" --quiet "${source}" || status=1
    done
  fi
else
  echo "lint: clang-tidy not installed; skipping static analysis"
fi

if [[ -f .clang-format ]] && command -v clang-format >/dev/null 2>&1; then
  echo "lint: clang-format drift check"
  clang-format --dry-run --Werror "${sources[@]}" \
    $(git ls-files 'src/**/*.h' 'tools/*.h') || status=1
else
  echo "lint: no .clang-format profile or tool; skipping format check"
fi

exit "${status}"
