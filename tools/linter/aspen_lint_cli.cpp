// aspen-lint command-line driver.
//
//   aspen-lint [--root=DIR] [--json=FILE] [--list-rules] <files...>
//
// Lints the given source files (paths are reported as passed, resolved
// against --root when relative) and prints unsuppressed findings one per
// line.  --json writes the machine-readable report CI uploads as an
// artifact.  Exit status: 0 when the gate passes (zero unsuppressed
// findings), 1 when findings remain, 64 on usage errors.
//
// tools/lint.sh assembles the file list from git ls-files and calls this
// binary; tests/test_lint.cpp drives the library directly over the fixture
// corpus in tests/lint_corpus/.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/lint/lint.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: aspen-lint [--root=DIR] [--json=FILE] [--list-rules] "
               "<files...>\n");
  return 64;
}

int list_rules() {
  std::printf("%-26s %-8s %s\n", "rule", "severity", "summary");
  for (const aspen::lint::RuleInfo& r : aspen::lint::rule_catalogue()) {
    std::printf("%-26s %-8s %s\n", r.id, aspen::lint::to_cstring(r.severity),
                r.summary);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string json_path;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") return list_rules();
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "aspen-lint: unknown flag '%s'\n", arg.c_str());
      return usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return usage();

  const aspen::lint::LintReport report = aspen::lint::lint_files(root, files);

  const std::string text = aspen::lint::report_to_text(report);
  if (!text.empty()) std::fputs(text.c_str(), stdout);

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "aspen-lint: cannot write '%s'\n",
                   json_path.c_str());
      return 64;
    }
    out << aspen::lint::report_to_json(report);
  }

  std::printf(
      "aspen-lint: %llu files, %llu unsuppressed finding(s), %llu "
      "suppressed, %zu unused suppression(s)\n",
      static_cast<unsigned long long>(report.files_scanned),
      static_cast<unsigned long long>(report.unsuppressed_count()),
      static_cast<unsigned long long>(report.suppressed_count()),
      report.unused_suppressions.size());
  return report.clean() ? 0 : 1;
}
