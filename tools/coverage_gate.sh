#!/usr/bin/env bash
# Coverage lane: instrumented Debug build, full test suite, then the line
# coverage gates in tools/coverage_report.py (src/obs/ and the
# survivability engine sources >= 90%, repo-wide within 2 points of
# tools/coverage_baseline.txt).
#
#   ./tools/coverage_gate.sh [build_dir] [--record-baseline]
#
# The per-file report lands at <build_dir>/coverage_report.txt.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-coverage"
if [[ $# -gt 0 && "$1" != --* ]]; then
  BUILD="$1"
  shift
fi
EXTRA_ARGS=("$@")

cmake -S "$ROOT" -B "$BUILD" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="--coverage" \
  -DASPEN_WERROR=OFF
cmake --build "$BUILD" -j "$(nproc)"
(cd "$BUILD" && ctest -j "$(nproc)" --output-on-failure)

python3 "$ROOT/tools/coverage_report.py" "$ROOT" "$BUILD" "${EXTRA_ARGS[@]}"
