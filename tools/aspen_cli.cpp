// aspen — command-line front end to the Aspen tree library.
//
//   aspen generate <n> <k> <ftv>                  tree properties
//   aspen enumerate <n> <k> [min_hosts [max_sw]]  design-space catalog
//   aspen validate <n> <k> <ftv> [striping [seed]]   §7 wiring checks
//   aspen export <dot|csv> <n> <k> <ftv>          topology to stdout
//   aspen design <n_fat> <k> <x> [placement]      fixed-host Aspen tree
//   aspen recommend <n> <budget> [ft]             §8.1 FTV placement
//   aspen simulate <n> <k> <ftv> <lsp|anp|anp+> [level]   failure sweep
//   aspen availability <n> <k> <ftv> [rate]       §1 nines accounting
//   aspen window <n> <k> <ftv> <lsp|anp|anp+>     §8.4 loss-vs-time curve
//   aspen chaos <n> <k> <ftv> <lsp|anp|anp+> [events [drop [seed [degrade]]]]
//                                                 randomized fault campaign
//   aspen detect <n> <k> <ftv> [loss [interval [N [M]]]]
//                                                 BFD-style detector drill
//   aspen label <n> <k> <ftv> [host]              §5.3 hierarchical labels
//   aspen audit <n> <k> <ftv> <links.csv>         validate external wiring
//   aspen trace <n> <k> <ftv> <lsp|anp> [single|chaos [events]]
//                                                 canonical traced scenario
//   aspen serve <n> <k> <ftv> <lsp|anp|anp+> [queries [drop [seed [deadline]]]]
//                                                 what-if query service under
//                                                 live chaos, audited
//   aspen flows <n> <k> <ftv> <lsp|anp|anp+> [flows [events [seed [policy]]]]
//                                                 flow-scale traffic through a
//                                                 chaos schedule, exact loss
//
// Every subcommand is a thin veneer over the public library API; exit code
// 0 on success, 1 on bad usage, 2 when a check fails.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/availability.h"
#include "src/analysis/convergence.h"
#include "src/analysis/survivability.h"
#include "src/analysis/trace_scenarios.h"
#include "src/obs/obs.h"
#include "src/fault/chaos.h"
#include "src/fault/detector.h"
#include "src/fault/failure_domains.h"
#include "src/fault/seed.h"
#include "src/aspen/enumerate.h"
#include "src/aspen/fixed_hosts.h"
#include "src/aspen/generator.h"
#include "src/aspen/recommend.h"
#include "src/proto/experiment.h"
#include "src/serve/driver.h"
#include "src/labels/labels.h"
#include "src/proto/inflight.h"
#include "src/traffic/flow_plane.h"
#include "src/traffic/patterns.h"
#include "src/topo/export.h"
#include "src/topo/import.h"
#include "src/topo/validate.h"
#include "src/util/contracts.h"
#include "src/util/parallel.h"
#include "src/util/table.h"

namespace {

using namespace aspen;

/// Global --seed= override, stripped in main(); subcommands that take a
/// seed (chaos, detect) prefer it over their positional.
std::optional<std::uint64_t> g_seed;

/// Global --metrics= / --trace= output paths ("-" = stdout), stripped in
/// main().  Setting either enables the corresponding obs subsystem for the
/// whole invocation; the collected data is written out after the subcommand
/// returns.
std::optional<std::string> g_metrics_path;
std::optional<std::string> g_trace_path;

/// Writes `data` to `path` ("-" = stdout).  Returns 0 on success.
int write_output(const std::string& path, const std::string& data,
                 bool binary) {
  if (path == "-") {
    std::fwrite(data.data(), 1, data.size(), stdout);
    return 0;
  }
  std::ofstream out(path, binary ? std::ios::binary : std::ios::out);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  out << data;
  return 0;
}

[[nodiscard]] bool wants_binary_trace(const std::string& path) {
  constexpr const char* kSuffix = ".bin";
  const std::size_t len = std::strlen(kSuffix);
  return path.size() >= len &&
         path.compare(path.size() - len, len, kSuffix) == 0;
}

/// Dumps the process-wide metrics/trace data to the --metrics=/--trace=
/// destinations (no-op for whichever flag is unset).
int flush_obs_outputs() {
  int rc = 0;
  if (g_metrics_path) {
    rc |= write_output(*g_metrics_path, obs::metrics().to_json(2) + "\n",
                       /*binary=*/false);
  }
  if (g_trace_path) {
    const bool binary = wants_binary_trace(*g_trace_path);
    rc |= write_output(*g_trace_path,
                       binary ? obs::tracer().to_binary()
                              : obs::tracer().to_jsonl(),
                       binary);
  }
  return rc;
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  aspen generate <n> <k> <ftv>\n"
      "  aspen enumerate <n> <k> [min_hosts [max_switches]]\n"
      "  aspen validate <n> <k> <ftv> [standard|rotated|random|parallel "
      "[seed]]\n"
      "  aspen export <dot|csv> <n> <k> <ftv>\n"
      "  aspen design <n_fat> <k> <x> [top|bottom|spread]\n"
      "  aspen recommend <n> <budget> [ft]\n"
      "  aspen simulate <n> <k> <ftv> <lsp|anp|anp+> [level]\n"
      "  aspen availability <n> <k> <ftv> [failures_per_link_per_year]\n"
      "  aspen window <n> <k> <ftv> <lsp|anp|anp+>\n"
      "  aspen chaos <n> <k> <ftv> <lsp|anp|anp+> [events [drop_rate "
      "[seed [degrade]]]]\n"
      "  aspen survive <n> <k> <ftv> [samples [independent|rack|feed|"
      "linecard[:p] [max_steps [mtbf_h [mttr_h]]]]]\n"
      "  aspen detect <n> <k> <ftv> [loss [interval_ms [N [M]]]]\n"
      "  aspen label <n> <k> <ftv> [host]\n"
      "  aspen audit <n> <k> <ftv> <links.csv>\n"
      "  aspen trace <n> <k> <ftv> <lsp|anp> [single|chaos [events]]\n"
      "  aspen serve <n> <k> <ftv> <lsp|anp|anp+> [queries [drop_rate "
      "[seed [deadline_ms]]]]\n"
      "  aspen flows <n> <k> <ftv> <lsp|anp|anp+> [flows [events "
      "[seed [hash|lowest|weighted]]]]\n"
      "ftv syntax: \"<a,b,c>\" or \"a,b,c\" (top level first)\n"
      "global flags (any position):\n"
      "  --audit=<off|basic|paranoid>   runtime invariant-audit level;\n"
      "                                 paranoid runs every layer auditor at\n"
      "                                 phase boundaries (also via the\n"
      "                                 ASPEN_AUDIT_LEVEL env variable)\n"
      "  --seed=<u64>                   campaign / detector seed; overrides\n"
      "                                 the positional seed and is echoed in\n"
      "                                 every report\n"
      "  --threads=<n>                  route-computation worker threads\n"
      "                                 (0 = auto; also via the\n"
      "                                 ASPEN_THREADS env variable); output\n"
      "                                 is identical at every thread count\n"
      "  --metrics=<path|->             enable the metrics registry and\n"
      "                                 write a JSON snapshot at exit\n"
      "                                 (- = stdout)\n"
      "  --trace=<path|->               enable event tracing and write the\n"
      "                                 trace at exit (JSON Lines, or the\n"
      "                                 compact binary format when the path\n"
      "                                 ends in .bin)\n");
  return 1;
}

void print_tree(const TreeParams& tree) {
  std::printf("%s\n", tree.to_string().c_str());
  std::printf("  hosts            : %lu\n",
              static_cast<unsigned long>(tree.num_hosts()));
  std::printf("  switches         : %lu (S=%lu per level, S/2 on top)\n",
              static_cast<unsigned long>(tree.total_switches()),
              static_cast<unsigned long>(tree.S));
  std::printf("  links            : %lu\n",
              static_cast<unsigned long>(tree.total_links()));
  std::printf("  DCC              : %lu\n",
              static_cast<unsigned long>(tree.dcc()));
  std::printf("  aggregation      : %.0f\n", tree.overall_aggregation());
  std::printf("  avg convergence  : %.2f hops\n",
              average_update_propagation(tree.ftv()));
  std::printf("  per-level (i: p m r c ft):\n");
  for (Level i = tree.n; i >= 1; --i) {
    const auto ui = static_cast<std::size_t>(i);
    std::printf("    L%d: p=%-4lu m=%-4lu", i,
                static_cast<unsigned long>(tree.p[ui]),
                static_cast<unsigned long>(tree.m[ui]));
    if (i >= 2) {
      std::printf(" r=%-4lu c=%-2lu ft=%d",
                  static_cast<unsigned long>(tree.r[ui]),
                  static_cast<unsigned long>(tree.c[ui]),
                  tree.fault_tolerance_at_level(i));
    }
    std::printf("\n");
  }
}

int cmd_generate(const std::vector<std::string>& args) {
  if (args.size() != 3) return usage();
  print_tree(generate_tree(std::stoi(args[0]), std::stoi(args[1]),
                           FaultToleranceVector::parse(args[2])));
  return 0;
}

int cmd_enumerate(const std::vector<std::string>& args) {
  if (args.size() < 2 || args.size() > 4) return usage();
  EnumerationFilter filter;
  if (args.size() >= 3) filter.min_hosts = std::stoull(args[2]);
  if (args.size() >= 4) filter.max_switches = std::stoull(args[3]);
  TextTable table({"FTV", "DCC", "hosts", "switches", "links", "avg hops"});
  for (const TreeParams& t :
       enumerate_trees(std::stoi(args[0]), std::stoi(args[1]), filter)) {
    table.add_row({t.ftv().to_string(), std::to_string(t.dcc()),
                   std::to_string(t.num_hosts()),
                   std::to_string(t.total_switches()),
                   std::to_string(t.total_links()),
                   format_double(average_update_propagation(t.ftv()), 2)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}

StripingConfig parse_striping(const std::vector<std::string>& args,
                              std::size_t index) {
  StripingConfig cfg;
  if (args.size() > index) {
    const std::string& name = args[index];
    if (name == "rotated") {
      cfg.kind = StripingKind::kRotated;
    } else if (name == "random") {
      cfg.kind = StripingKind::kRandom;
    } else if (name == "parallel") {
      cfg.kind = StripingKind::kParallelHeavy;
    } else if (name != "standard") {
      throw PreconditionError("unknown striping: " + name);
    }
  }
  if (args.size() > index + 1) cfg.seed = std::stoull(args[index + 1]);
  return cfg;
}

int cmd_validate(const std::vector<std::string>& args) {
  if (args.size() < 3 || args.size() > 5) return usage();
  const Topology topo = Topology::build(
      generate_tree(std::stoi(args[0]), std::stoi(args[1]),
                    FaultToleranceVector::parse(args[2])),
      parse_striping(args, 3));
  const ValidationReport report = validate_topology(topo);
  std::printf("%s\n", topo.describe().c_str());
  std::printf("  ports ok                : %s\n", report.ports_ok ? "yes" : "NO");
  std::printf("  uniform fault tolerance : %s\n",
              report.uniform_fault_tolerance ? "yes" : "NO");
  std::printf("  top-level coverage      : %s\n",
              report.top_level_coverage ? "yes" : "NO");
  std::printf("  §7 ANP striping         : %s\n",
              report.anp_striping_ok ? "yes" : "NO");
  std::printf("  parallel link pairs     : %lu\n",
              static_cast<unsigned long>(report.parallel_link_pairs));
  if (!report.bottleneck_pod_levels.empty()) {
    std::printf("  bottleneck pods (§8.4) at levels:");
    for (const Level level : report.bottleneck_pod_levels) {
      std::printf(" L%d", level);
    }
    std::printf("\n");
  }
  for (const AuditFinding& finding : report.findings) {
    std::printf("  problem [%s]: %s\n", to_cstring(finding.code),
                finding.message.c_str());
  }
  return report.all_ok() ? 0 : 2;
}

int cmd_export(const std::vector<std::string>& args) {
  if (args.size() != 4) return usage();
  const Topology topo = Topology::build(
      generate_tree(std::stoi(args[1]), std::stoi(args[2]),
                    FaultToleranceVector::parse(args[3])));
  if (args[0] == "dot") {
    std::printf("%s", to_dot(topo).c_str());
  } else if (args[0] == "csv") {
    std::printf("%s", to_csv(topo).c_str());
  } else {
    return usage();
  }
  return 0;
}

int cmd_design(const std::vector<std::string>& args) {
  if (args.size() < 3 || args.size() > 4) return usage();
  RedundancyPlacement placement = RedundancyPlacement::kTop;
  if (args.size() == 4) {
    if (args[3] == "bottom") {
      placement = RedundancyPlacement::kBottom;
    } else if (args[3] == "spread") {
      placement = RedundancyPlacement::kSpread;
    } else if (args[3] != "top") {
      return usage();
    }
  }
  const int n_fat = std::stoi(args[0]);
  const int k = std::stoi(args[1]);
  const TreeParams aspen =
      design_fixed_host_tree(n_fat, k, std::stoi(args[2]), placement);
  const TreeParams fat = fat_tree(n_fat, k);
  print_tree(aspen);
  std::printf("  vs the %d-level fat tree: +%lu switches, +%lu links, same "
              "%lu hosts\n",
              n_fat,
              static_cast<unsigned long>(aspen.total_switches() -
                                         fat.total_switches()),
              static_cast<unsigned long>(aspen.total_links() -
                                         fat.total_links()),
              static_cast<unsigned long>(fat.num_hosts()));
  return 0;
}

int cmd_recommend(const std::vector<std::string>& args) {
  if (args.size() < 2 || args.size() > 3) return usage();
  const int ft = args.size() == 3 ? std::stoi(args[2]) : 1;
  const auto ftv =
      recommend_ftv_placement(std::stoi(args[0]), std::stoi(args[1]), ft);
  const PlacementQuality quality = evaluate_placement(ftv);
  std::printf("%s  covered=%s longest_zero_run=%d avg_hops=%.2f\n",
              ftv.to_string().c_str(), quality.covered ? "yes" : "no",
              quality.longest_zero_run, quality.average_hops);
  return 0;
}

int cmd_simulate(const std::vector<std::string>& args) {
  if (args.size() < 4 || args.size() > 5) return usage();
  const Topology topo = Topology::build(
      generate_tree(std::stoi(args[0]), std::stoi(args[1]),
                    FaultToleranceVector::parse(args[2])));
  SweepOptions options;
  ProtocolKind kind;
  if (args[3] == "lsp") {
    kind = ProtocolKind::kLsp;
  } else if (args[3] == "anp") {
    kind = ProtocolKind::kAnp;
  } else if (args[3] == "anp+") {
    kind = ProtocolKind::kAnp;
    options.anp.notify_children = true;
  } else {
    return usage();
  }
  if (args.size() == 5) options.levels = {std::stoi(args[4])};
  options.connectivity_flows = 2000;
  const SweepResult sweep = sweep_link_failures(kind, topo, options);
  std::printf("%s, protocol %s: %lu failures swept\n",
              topo.describe().c_str(), args[3].c_str(),
              static_cast<unsigned long>(sweep.failures));
  std::printf("  convergence ms : avg %.1f  min %.1f  max %.1f\n",
              sweep.convergence_ms.mean(), sweep.convergence_ms.min(),
              sweep.convergence_ms.max());
  std::printf("  reacted        : avg %.1f of %lu switches\n",
              sweep.reacted.mean(),
              static_cast<unsigned long>(topo.num_switches()));
  std::printf("  informed       : avg %.1f\n", sweep.informed.mean());
  std::printf("  messages       : avg %.1f\n", sweep.messages.mean());
  std::printf("  fully restored : %lu/%lu (2000 sampled flows each)\n",
              static_cast<unsigned long>(sweep.fully_restored),
              static_cast<unsigned long>(sweep.failures));
  return 0;
}

int cmd_availability(const std::vector<std::string>& args) {
  if (args.size() < 3 || args.size() > 4) return usage();
  const TreeParams tree =
      generate_tree(std::stoi(args[0]), std::stoi(args[1]),
                    FaultToleranceVector::parse(args[2]));
  const double rate = args.size() == 4 ? std::stod(args[3]) : 0.25;
  const AvailabilityEstimate estimate = estimate_availability(tree, rate);
  std::printf("%s at %.2f failures/link/year:\n", tree.to_string().c_str(),
              rate);
  std::printf("  failures/year  : %.0f\n", estimate.failures_per_year);
  std::printf("  window/failure : %.1f ms\n", estimate.reaction_s * 1000.0);
  std::printf("  downtime/year  : %.1f s\n", estimate.downtime_s_per_year);
  std::printf("  availability   : %.7f (%.2f nines)\n",
              estimate.availability, estimate.nines);
  return 0;
}

int cmd_window(const std::vector<std::string>& args) {
  if (args.size() != 4) return usage();
  const Topology topo = Topology::build(
      generate_tree(std::stoi(args[0]), std::stoi(args[1]),
                    FaultToleranceVector::parse(args[2])));
  ProtocolKind kind;
  AnpOptions anp;
  if (args[3] == "lsp") {
    kind = ProtocolKind::kLsp;
  } else if (args[3] == "anp") {
    kind = ProtocolKind::kAnp;
  } else if (args[3] == "anp+") {
    kind = ProtocolKind::kAnp;
    anp.notify_children = true;
  } else {
    return usage();
  }
  std::vector<Flow> flows;
  const auto hosts = static_cast<std::uint32_t>(topo.num_hosts());
  for (std::uint32_t h = 0; h < hosts; ++h) {
    flows.push_back(Flow{HostId{h}, HostId{(h + hosts / 2) % hosts}});
  }
  const std::vector<SimTime> times{0,   5,   10,  20,   40,  80,
                                   160, 320, 640, 1280, 2560};
  const auto curve = run_window_experiment(
      kind, topo, topo.links_at_level(2)[0], flows, times, DelayModel{},
      anp);
  std::printf("%s, %s, L2 failure — loss vs injection time:\n",
              topo.params().to_string().c_str(), args[3].c_str());
  for (const WindowSample& sample : curve) {
    std::printf("  t=%6.0f ms  loss %5.1f%%\n", sample.inject_ms,
                100.0 * sample.loss_rate());
  }
  return 0;
}

int cmd_chaos(const std::vector<std::string>& args) {
  if (args.size() < 4 || args.size() > 8) return usage();
  const Topology topo = Topology::build(
      generate_tree(std::stoi(args[0]), std::stoi(args[1]),
                    FaultToleranceVector::parse(args[2])));
  ChaosOptions options;
  ProtocolKind kind;
  if (args[3] == "lsp") {
    kind = ProtocolKind::kLsp;
  } else if (args[3] == "anp") {
    kind = ProtocolKind::kAnp;
  } else if (args[3] == "anp+") {
    kind = ProtocolKind::kAnp;
    options.anp.notify_children = true;
  } else {
    return usage();
  }
  if (args.size() >= 5) options.num_events = std::stoi(args[4]);
  if (args.size() >= 6) {
    options.delays.channel.drop_rate = std::stod(args[5]);
    options.delays.channel.duplicate_rate =
        options.delays.channel.drop_rate / 4.0;
    options.delays.channel.jitter_ms = 0.5;
    options.delays.channel.reliable = options.delays.channel.drop_rate > 0.0;
  }
  if (args.size() >= 7) options.seed = std::stoull(args[6]);
  if (g_seed) options.seed = *g_seed;
  options.delays.channel.seed =
      fault::derive_stream_seed(options.seed, fault::kStreamChannel);
  if (args.size() >= 8) {
    options.p_degrade = std::stod(args[7]);
    // Gray links can eat notifications; retransmit so tables restore.
    if (options.p_degrade > 0.0) options.delays.channel.reliable = true;
  }

  // Under paranoid auditing the protocols self-audit mid-run; tally those
  // violations rather than aborting the campaign on the first one.
  options.delays.audit_level =
      contracts::effective_audit_level(options.delays.audit_level);
  const bool paranoid =
      options.delays.audit_level >= contracts::AuditLevel::kParanoid;
  contracts::reset_violations();
  ChaosOutcome outcome;
  {
    const contracts::ScopedPolicy tally(
        paranoid ? contracts::ViolationPolicy::kCountAndLog
                 : contracts::policy());
    outcome = run_chaos_campaign(kind, topo, options);
  }
  const std::uint64_t contract_violations = contracts::violation_count();
  std::printf("%s, protocol %s: %d-event chaos campaign, seed %lu, "
              "drop rate %.0f%%, audit %s\n",
              topo.describe().c_str(), args[3].c_str(), options.num_events,
              static_cast<unsigned long>(options.seed),
              100.0 * options.delays.channel.drop_rate,
              to_cstring(options.delays.audit_level));

  TextTable table({"metric", "value"});
  table.add_row({"link failures / recoveries",
                 std::to_string(outcome.link_failures) + " / " +
                     std::to_string(outcome.link_recoveries)});
  table.add_row({"switch crashes / recoveries",
                 std::to_string(outcome.switch_crashes) + " / " +
                     std::to_string(outcome.switch_recoveries)});
  table.add_row({"crash-mid-reaction runs",
                 std::to_string(outcome.compound_runs)});
  if (options.p_degrade > 0.0) {
    table.add_row({"gray / flapping injected",
                   std::to_string(outcome.gray_injected) + " / " +
                       std::to_string(outcome.flaps_injected)});
    table.add_row({"degradations cleared",
                   std::to_string(outcome.degradations_cleared)});
  }
  table.add_row({"protocol messages", std::to_string(outcome.messages)});
  table.add_row({"retransmits / acks",
                 std::to_string(outcome.retransmits) + " / " +
                     std::to_string(outcome.acks)});
  table.add_row({"channel dropped / duplicated",
                 std::to_string(outcome.channel_dropped) + " / " +
                     std::to_string(outcome.channel_duplicated)});
  table.add_row({"duplicates suppressed",
                 std::to_string(outcome.duplicates_dropped)});
  table.add_row({"gave up / stale switches",
                 std::to_string(outcome.gave_up) + " / " +
                     std::to_string(outcome.stale_switches)});
  table.add_row({"convergence ms (avg/max)",
                 format_double(outcome.convergence_ms.mean(), 1) + " / " +
                     format_double(outcome.convergence_ms.max(), 1)});
  table.add_row({"all runs quiesced", outcome.all_quiesced ? "yes" : "NO"});
  table.add_row({"consistency checks",
                 std::to_string(outcome.checks) + " (" +
                     std::to_string(outcome.checked_flows) + " flows)"});
  table.add_row({"ground-truth violations",
                 std::to_string(outcome.ground_truth_violations)});
  table.add_row({"protocol shortfall flows",
                 std::to_string(outcome.protocol_shortfall)});
  if (options.p_degrade > 0.0) {
    table.add_row({"degraded-flow drops",
                   std::to_string(outcome.degraded_drops)});
    table.add_row({"health-eaten copies",
                   std::to_string(outcome.health_dropped)});
    if (outcome.detection_ms.count() > 0) {
      table.add_row({"gray confirm ms (avg/max)",
                     format_double(outcome.detection_ms.mean(), 1) + " / " +
                         format_double(outcome.detection_ms.max(), 1)});
    }
    table.add_row({"undetected grays",
                   std::to_string(outcome.undetected_grays)});
  }
  table.add_row({"tables restored", outcome.tables_restored ? "yes" : "NO"});
  if (paranoid) {
    table.add_row({"invariant audit passes",
                   std::to_string(outcome.audit_checks)});
    table.add_row({"invariant audit violations",
                   std::to_string(outcome.audit_violations)});
    table.add_row({"contract violations",
                   std::to_string(contract_violations)});
  }
  std::printf("%s", table.to_string().c_str());
  for (const std::string& message : outcome.audit_messages) {
    std::printf("  audit: %s\n", message.c_str());
  }
  if (paranoid) {
    for (const std::string& message : contracts::recent_violations()) {
      std::printf("  contract: %s\n", message.c_str());
    }
  }

  const bool ok = outcome.tables_restored &&
                  outcome.ground_truth_violations == 0 &&
                  outcome.all_quiesced && outcome.audit_violations == 0 &&
                  contract_violations == 0;
  return ok ? 0 : 2;
}

// Flow-scale traffic through the vulnerability window: run_flow_chaos
// admits a batch of uniform-random flows before every fault-plane action
// and walks all inflight flows against the protocol's live tables after
// it, so the report prices convergence in lost flows rather than
// milliseconds.  The accounting identity admitted == delivered + lost +
// inflight is exact; exit 0 iff it holds and the campaign's own
// invariants (tables restored, zero ground-truth violations) pass.
int cmd_flows(const std::vector<std::string>& args) {
  if (args.size() < 4 || args.size() > 8) return usage();
  const Topology topo = Topology::build(
      generate_tree(std::stoi(args[0]), std::stoi(args[1]),
                    FaultToleranceVector::parse(args[2])));
  FlowChaosOptions options;
  ProtocolKind kind;
  if (args[3] == "lsp") {
    kind = ProtocolKind::kLsp;
  } else if (args[3] == "anp") {
    kind = ProtocolKind::kAnp;
  } else if (args[3] == "anp+") {
    kind = ProtocolKind::kAnp;
    options.chaos.anp.notify_children = true;
  } else {
    return usage();
  }
  if (args.size() >= 5) {
    options.total_flows = std::stoull(args[4]);
  }
  if (args.size() >= 6) options.chaos.num_events = std::stoi(args[5]);
  if (args.size() >= 7) options.chaos.seed = std::stoull(args[6]);
  if (g_seed) options.chaos.seed = *g_seed;
  if (args.size() >= 8 &&
      !parse_next_hop_policy(args[7], options.plane.policy)) {
    return usage();
  }
  options.chaos.check_flows = 32;  // flows are the payload, not the checks
  options.plane.base_seed =
      fault::derive_stream_seed(options.chaos.seed, fault::kStreamFlowEcmp);

  const FlowChaosReport report = run_flow_chaos(kind, topo, options);

  std::printf("%s, protocol %s: %lu flows / policy %s through a %d-event "
              "chaos campaign, seed %lu\n",
              topo.describe().c_str(), args[3].c_str(),
              static_cast<unsigned long>(report.admitted),
              to_cstring(options.plane.policy), options.chaos.num_events,
              static_cast<unsigned long>(options.chaos.seed));

  TextTable table({"metric", "value"});
  table.add_row({"admitted", std::to_string(report.admitted)});
  table.add_row({"delivered", std::to_string(report.delivered)});
  table.add_row({"lost (blackholed/looped/no-route)",
                 std::to_string(report.lost) + " (" +
                     std::to_string(report.blackholed) + "/" +
                     std::to_string(report.looped) + "/" +
                     std::to_string(report.no_route) + ")"});
  table.add_row({"still inflight", std::to_string(report.inflight)});
  table.add_row({"lost rate", format_double(100.0 * report.lost_rate(), 3) +
                                  "%"});
  table.add_row({"reroutes", std::to_string(report.reroutes)});
  table.add_row({"epochs", std::to_string(report.epochs)});
  table.add_row({"fate fingerprint",
                 std::to_string(report.fate_fingerprint)});
  table.add_row({"link failures / recoveries",
                 std::to_string(report.chaos.link_failures) + " / " +
                     std::to_string(report.chaos.link_recoveries)});
  table.add_row({"switch crashes / recoveries",
                 std::to_string(report.chaos.switch_crashes) + " / " +
                     std::to_string(report.chaos.switch_recoveries)});
  table.add_row({"ground-truth violations",
                 std::to_string(report.chaos.ground_truth_violations)});
  table.add_row({"tables restored",
                 report.chaos.tables_restored ? "yes" : "NO"});
  std::printf("%s", table.to_string().c_str());

  const bool ok =
      report.admitted == report.delivered + report.lost + report.inflight &&
      report.chaos.tables_restored &&
      report.chaos.ground_truth_violations == 0;
  return ok ? 0 : 2;
}

// Monte Carlo survivability campaign: progressive correlated failures on a
// warm incremental routing state, reported as a P(connected | j failed
// domains) curve with Wilson intervals plus a steady-state availability
// figure.  Exit 0 as long as the campaign committed samples — quarantined
// samples are reported, not fatal (the engine degrades gracefully).
int cmd_survive(const std::vector<std::string>& args) {
  if (args.size() < 3 || args.size() > 8) return usage();
  const Topology topo = Topology::build(
      generate_tree(std::stoi(args[0]), std::stoi(args[1]),
                    FaultToleranceVector::parse(args[2])));
  SurvivabilityOptions options;
  options.threads = 0;  // --threads= / ASPEN_THREADS via the parallel pool
  if (args.size() >= 4) options.samples = std::stoull(args[3]);
  const std::string domain_spec = args.size() >= 5 ? args[4] : "independent";
  if (args.size() >= 6) {
    options.max_steps = static_cast<std::uint32_t>(std::stoul(args[5]));
  }
  const double mtbf_hours = args.size() >= 7 ? std::stod(args[6]) : 2190.0;
  const double mttr_hours = args.size() >= 8 ? std::stod(args[7]) : 4.0;
  if (g_seed) options.seed = *g_seed;

  const fault::FailureDomainModel domains =
      fault::FailureDomainModel::parse(topo, domain_spec);
  const SurvivabilityResult result =
      run_survivability(topo, domains, options);

  std::printf("%s: survivability campaign, %lu samples, domains %s (%lu), "
              "seed %lu\n",
              topo.describe().c_str(),
              static_cast<unsigned long>(result.samples), domain_spec.c_str(),
              static_cast<unsigned long>(result.domain_count),
              static_cast<unsigned long>(options.seed));

  TextTable table({"metric", "value"});
  table.add_row({"committed samples",
                 std::to_string(result.acc.committed_samples)});
  table.add_row({"quarantined samples",
                 std::to_string(result.acc.quarantined)});
  table.add_row({"audits run", std::to_string(result.acc.audits_run)});
  table.add_row({"rollback rebuilds",
                 std::to_string(result.acc.rollback_rebuilds)});
  table.add_row({"P(disconnect <= max_steps)",
                 format_double(result.p_disconnect(), 4)});
  table.add_row({"mean domains to disconnect",
                 format_double(result.mean_domains_to_disconnect(), 2)});
  table.add_row({"mean links to disconnect",
                 format_double(result.mean_links_to_disconnect(), 2)});
  table.add_row({"availability (MTBF " + format_double(mtbf_hours, 0) +
                     "h, MTTR " + format_double(mttr_hours, 0) + "h)",
                 format_double(availability_from_survivability(
                                   result, mtbf_hours, mttr_hours),
                               6)});
  std::printf("%s", table.to_string().c_str());

  TextTable curve({"failed domains", "mean links down", "P(connected)",
                   "wilson 95% CI", "reachable pairs"});
  for (const SurvivabilityCurvePoint& point : result.curve()) {
    curve.add_row({std::to_string(point.step),
                   format_double(point.mean_failed_links, 1),
                   format_double(point.p_connected, 4),
                   "[" + format_double(point.ci.lo, 4) + ", " +
                       format_double(point.ci.hi, 4) + "]",
                   format_double(point.mean_reachable_fraction, 4)});
  }
  std::printf("%s", curve.to_string().c_str());
  for (const std::uint64_t index : result.acc.quarantined_indices) {
    std::printf("  quarantined sample %lu\n",
                static_cast<unsigned long>(index));
  }
  return result.acc.committed_samples > 0 ? 0 : 2;
}

// Detection drill: how fast does the BFD-style detector confirm a hard
// cut vs gray links of increasing loss, and what does the confirm latency
// do to each protocol's loss-inducing time once it is charged as
// DelayModel::detection?
int cmd_detect(const std::vector<std::string>& args) {
  if (args.size() < 3 || args.size() > 7) return usage();
  const Topology topo = Topology::build(
      generate_tree(std::stoi(args[0]), std::stoi(args[1]),
                    FaultToleranceVector::parse(args[2])));
  const double gray_loss = args.size() >= 4 ? std::stod(args[3]) : 0.3;
  fault::DetectorOptions options;
  if (args.size() >= 5) options.probe_interval_ms = std::stod(args[4]);
  if (args.size() >= 6) options.loss_threshold = std::stoi(args[5]);
  if (args.size() >= 7) options.window = std::stoi(args[6]);
  if (g_seed) options.seed = *g_seed;
  const LinkId link = topo.links_at_level(2)[0];
  std::printf("%s: detector on %s — probe %.1f ms, %d-of-%d, "
              "recover after %d, seed %lu\n",
              topo.describe().c_str(), to_string(link).c_str(),
              options.probe_interval_ms, options.loss_threshold,
              options.window, options.recovery_threshold,
              static_cast<unsigned long>(options.seed));

  bool ok = true;

  // Hard cut: the worst-case bound is deterministic.
  {
    LinkHealthState fault;
    fault.health = LinkHealth::kDown;
    const fault::DetectionOutcome down =
        fault::measure_detection(topo, link, fault, options);
    const bool within =
        down.confirmed() && down.confirm_latency_ms <= options.confirm_bound_ms();
    std::printf("  hard down : confirmed in %.1f ms (bound %.1f ms) — %s\n",
                down.confirm_latency_ms, options.confirm_bound_ms(),
                within ? "ok" : "VIOLATED");
    ok = ok && within;
  }

  // Gray sweep: confirmation is probabilistic; latency grows as the loss
  // rate falls toward the N-of-M threshold.
  TextTable table({"gray loss", "suspect ms", "confirm ms", "probes",
                   "lost"});
  for (const double loss : {0.1, 0.2, gray_loss, 0.7, 0.9}) {
    LinkHealthState fault;
    fault.health = LinkHealth::kGray;
    fault.loss_rate = loss;
    const fault::DetectionOutcome det =
        fault::measure_detection(topo, link, fault, options);
    table.add_row({format_double(loss, 2),
                   det.suspect_latency_ms < 0.0
                       ? "never"
                       : format_double(det.suspect_latency_ms, 1),
                   det.confirmed() ? format_double(det.confirm_latency_ms, 1)
                                   : "never",
                   std::to_string(det.stats.probes_sent),
                   std::to_string(det.stats.probes_lost)});
    if (loss == gray_loss) ok = ok && det.confirmed();
  }
  std::printf("%s", table.to_string().c_str());

  // Pipeline: detection latency + protocol reaction = loss-inducing time.
  for (const char* name : {"lsp", "anp"}) {
    const ProtocolKind kind =
        std::strcmp(name, "lsp") == 0 ? ProtocolKind::kLsp : ProtocolKind::kAnp;
    LinkHealthState fault;
    fault.health = LinkHealth::kGray;
    fault.loss_rate = gray_loss;
    const fault::DetectedFailureResult run =
        fault::run_detected_failure(kind, topo, link, fault, options);
    std::printf("  %-3s pipeline: detect %.1f ms + react %.1f ms = %.1f ms "
                "loss-inducing\n",
                name, run.detection.confirm_latency_ms,
                run.reaction.convergence_time_ms -
                    run.reaction.detection_ms,
                run.reaction.convergence_time_ms);
    ok = ok && run.reaction.detection_ms > 0.0;
  }
  return ok ? 0 : 2;
}

int cmd_label(const std::vector<std::string>& args) {
  if (args.size() < 3 || args.size() > 4) return usage();
  const Topology topo = Topology::build(
      generate_tree(std::stoi(args[0]), std::stoi(args[1]),
                    FaultToleranceVector::parse(args[2])));
  const ForwardingStateStats stats = forwarding_state_stats(topo);
  std::printf("%s\n", topo.describe().c_str());
  std::printf("  compact prefix entries : %lu total, %.1f per switch\n",
              static_cast<unsigned long>(stats.compact_entries),
              stats.mean_compact_per_switch);
  std::printf("  flat host-keyed        : %lu total\n",
              static_cast<unsigned long>(stats.flat_host_entries));
  if (args.size() == 4) {
    const HostId host{static_cast<std::uint32_t>(std::stoul(args[3]))};
    std::printf("  label(%s)             : %s\n", to_string(host).c_str(),
                label_of(topo, host).to_string().c_str());
  } else {
    for (std::uint32_t h = 0;
         h < std::min<std::uint64_t>(8, topo.num_hosts()); ++h) {
      std::printf("  label(%s) = %s\n", to_string(HostId{h}).c_str(),
                  label_of(topo, HostId{h}).to_string().c_str());
    }
  }
  return 0;
}

int cmd_audit(const std::vector<std::string>& args) {
  if (args.size() != 4) return usage();
  std::ifstream file(args[3]);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", args[3].c_str());
    return 1;
  }
  std::ostringstream csv;
  csv << file.rdbuf();
  const TreeParams params =
      generate_tree(std::stoi(args[0]), std::stoi(args[1]),
                    FaultToleranceVector::parse(args[2]));
  const Topology topo = import_topology_csv(params, csv.str());
  const ValidationReport report = validate_topology(topo);
  std::printf("audited %s against %s\n", args[3].c_str(),
              params.to_string().c_str());
  std::printf("  ports ok / uniform ft / coverage / §7 striping: "
              "%s / %s / %s / %s\n",
              report.ports_ok ? "yes" : "NO",
              report.uniform_fault_tolerance ? "yes" : "NO",
              report.top_level_coverage ? "yes" : "NO",
              report.anp_striping_ok ? "yes" : "NO");
  for (const std::string& problem : report.problems) {
    std::printf("  problem: %s\n", problem.c_str());
  }
  return report.all_ok() ? 0 : 2;
}

// Replays one canonical traced scenario (src/analysis/trace_scenarios.h) —
// the same runs the golden-trace tests snapshot — and dumps the trace.
// The trace goes to --trace=<path> when given, otherwise to stdout as JSON
// Lines; a metrics snapshot goes to --metrics=<path> when given.
int cmd_trace(const std::vector<std::string>& args) {
  if (args.size() < 4 || args.size() > 6) return usage();
  const Topology topo = Topology::build(
      generate_tree(std::stoi(args[0]), std::stoi(args[1]),
                    FaultToleranceVector::parse(args[2])));
  ProtocolKind kind;
  if (args[3] == "lsp") {
    kind = ProtocolKind::kLsp;
  } else if (args[3] == "anp") {
    kind = ProtocolKind::kAnp;
  } else {
    return usage();
  }
  TraceScenarioOptions options;
  if (args.size() >= 5) options.scenario = parse_trace_scenario(args[4]);
  if (args.size() >= 6) options.chaos_events = std::stoi(args[5]);
  if (g_seed) options.seed = *g_seed;

  const TraceScenarioResult result = run_traced_scenario(kind, topo, options);

  int rc = 0;
  if (g_metrics_path) {
    rc |= write_output(*g_metrics_path, result.metrics_json + "\n",
                       /*binary=*/false);
    g_metrics_path.reset();
  }
  if (g_trace_path) {
    const bool binary = wants_binary_trace(*g_trace_path);
    rc |= write_output(*g_trace_path, binary ? result.binary : result.jsonl,
                       binary);
    g_trace_path.reset();
  } else {
    std::fwrite(result.jsonl.data(), 1, result.jsonl.size(), stdout);
  }
  std::fprintf(stderr,
               "%s, %s, %s, seed %lu: %lu trace records (%lu evicted)\n",
               topo.describe().c_str(), args[3].c_str(),
               to_cstring(options.scenario),
               static_cast<unsigned long>(options.seed),
               static_cast<unsigned long>(result.records),
               static_cast<unsigned long>(result.dropped));
  return rc;
}

// Serve-under-chaos campaign: a fleet of retrying clients fires route /
// what-if / loss queries over lossy channels while a chaos campaign
// mutates the fabric; every answer is labeled with its snapshot digest and
// staleness, and the post-hoc auditor re-checks each one against ground
// truth.  Exit 0 iff the report passed (zero audit mismatches, chaos
// invariants held, every admitted query completed).
int cmd_serve(const std::vector<std::string>& args) {
  if (args.size() < 4 || args.size() > 8) return usage();
  const Topology topo = Topology::build(
      generate_tree(std::stoi(args[0]), std::stoi(args[1]),
                    FaultToleranceVector::parse(args[2])));
  serve::ServeChaosOptions options;
  ProtocolKind kind;
  if (args[3] == "lsp") {
    kind = ProtocolKind::kLsp;
  } else if (args[3] == "anp") {
    kind = ProtocolKind::kAnp;
  } else if (args[3] == "anp+") {
    kind = ProtocolKind::kAnp;
    options.chaos.anp.notify_children = true;
  } else {
    return usage();
  }
  if (args.size() >= 5) options.num_queries = std::stoi(args[4]);
  if (args.size() >= 6) {
    options.client.channel.drop_rate = std::stod(args[5]);
    options.client.channel.duplicate_rate =
        options.client.channel.drop_rate / 4.0;
    options.client.channel.jitter_ms = 0.3;
  }
  if (args.size() >= 7) options.chaos.seed = std::stoull(args[6]);
  if (g_seed) options.chaos.seed = *g_seed;
  if (args.size() >= 8) options.deadline_ms = std::stod(args[7]);
  options.chaos.num_events = std::max(4, options.num_queries / 25);
  options.chaos.check_flows = 64;
  options.action_every_ms = static_cast<double>(options.num_queries) *
                            options.query_interarrival_ms /
                            static_cast<double>(options.chaos.num_events + 1);
  options.checkpoint_every = std::max(1, options.num_queries / 5);

  const serve::ServeChaosReport report =
      serve::run_serve_under_chaos(kind, topo, options);

  std::printf("%s, protocol %s: %d queries / %d clients under a %d-event "
              "chaos campaign, seed %lu, drop rate %.0f%%\n",
              topo.describe().c_str(), args[3].c_str(), options.num_queries,
              options.num_clients, options.chaos.num_events,
              static_cast<unsigned long>(options.chaos.seed),
              100.0 * options.client.channel.drop_rate);

  TextTable table({"metric", "value"});
  table.add_row({"answered / gave up",
                 std::to_string(report.answered) + " / " +
                     std::to_string(report.gave_up)});
  table.add_row({"shed / deadline-rejected",
                 std::to_string(report.server.shed) + " / " +
                     std::to_string(report.server.deadline_rejected)});
  table.add_row({"retransmits / duplicate replays / coalesced",
                 std::to_string(report.clients.retransmits) + " / " +
                     std::to_string(report.server.duplicate_replays) +
                     " / " + std::to_string(report.server.coalesced)});
  table.add_row({"cache hits / misses / evictions",
                 std::to_string(report.cache_hits) + " / " +
                     std::to_string(report.cache_misses) + " / " +
                     std::to_string(report.cache_evictions)});
  table.add_row({"snapshot seals / checkpoints",
                 std::to_string(report.seals) + " / " +
                     std::to_string(report.checkpoints_cut)});
  if (report.staleness_ms.count() > 0) {
    table.add_row({"staleness ms (avg/max)",
                   format_double(report.staleness_ms.mean(), 2) + " / " +
                       format_double(report.staleness_ms.max(), 2)});
  }
  table.add_row({"labels audited", std::to_string(report.audited)});
  table.add_row({"audit mismatches",
                 std::to_string(report.audit_mismatches)});
  table.add_row({"ground-truth violations",
                 std::to_string(report.chaos.ground_truth_violations)});
  table.add_row({"tables restored",
                 report.chaos.tables_restored ? "yes" : "NO"});
  table.add_row({"report fingerprint",
                 std::to_string(report.fingerprint())});
  std::printf("%s", table.to_string().c_str());
  for (const std::string& message : report.audit_messages) {
    std::printf("  audit: %s\n", message.c_str());
  }
  return report.passed() ? 0 : 2;
}

int run_command(const std::string& command,
                const std::vector<std::string>& args) {
  if (command == "generate") return cmd_generate(args);
  if (command == "enumerate") return cmd_enumerate(args);
  if (command == "validate") return cmd_validate(args);
  if (command == "export") return cmd_export(args);
  if (command == "design") return cmd_design(args);
  if (command == "recommend") return cmd_recommend(args);
  if (command == "simulate") return cmd_simulate(args);
  if (command == "availability") return cmd_availability(args);
  if (command == "window") return cmd_window(args);
  if (command == "chaos") return cmd_chaos(args);
  if (command == "survive") return cmd_survive(args);
  if (command == "detect") return cmd_detect(args);
  if (command == "label") return cmd_label(args);
  if (command == "audit") return cmd_audit(args);
  if (command == "trace") return cmd_trace(args);
  if (command == "serve") return cmd_serve(args);
  if (command == "flows") return cmd_flows(args);
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  // Strip global flags first so they work in any position.
  std::vector<std::string> words;
  for (int i = 1; i < argc; ++i) {
    const std::string word = argv[i];
    constexpr const char* kAuditFlag = "--audit=";
    constexpr const char* kSeedFlag = "--seed=";
    if (word.rfind(kAuditFlag, 0) == 0) {
      try {
        aspen::contracts::set_audit_level(aspen::contracts::parse_audit_level(
            word.substr(std::strlen(kAuditFlag))));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return usage();
      }
      continue;
    }
    if (word.rfind(kSeedFlag, 0) == 0) {
      try {
        g_seed = std::stoull(word.substr(std::strlen(kSeedFlag)));
      } catch (const std::exception&) {
        std::fprintf(stderr, "error: bad --seed value: %s\n", word.c_str());
        return usage();
      }
      continue;
    }
    constexpr const char* kThreadsFlag = "--threads=";
    if (word.rfind(kThreadsFlag, 0) == 0) {
      try {
        aspen::parallel::set_num_threads(
            std::stoi(word.substr(std::strlen(kThreadsFlag))));
      } catch (const std::exception&) {
        std::fprintf(stderr, "error: bad --threads value: %s\n", word.c_str());
        return usage();
      }
      continue;
    }
    constexpr const char* kMetricsFlag = "--metrics=";
    if (word.rfind(kMetricsFlag, 0) == 0) {
      std::string path = word.substr(std::strlen(kMetricsFlag));
      g_metrics_path = path.empty() ? "-" : std::move(path);
      aspen::obs::ObsConfig config = aspen::obs::config();
      config.metrics = true;
      aspen::obs::configure(config);
      continue;
    }
    constexpr const char* kTraceFlag = "--trace=";
    if (word.rfind(kTraceFlag, 0) == 0) {
      std::string path = word.substr(std::strlen(kTraceFlag));
      g_trace_path = path.empty() ? "-" : std::move(path);
      aspen::obs::ObsConfig config = aspen::obs::config();
      config.trace = true;
      aspen::obs::configure(config);
      continue;
    }
    words.push_back(word);
  }
  if (words.empty()) return usage();
  const std::string command = words[0];
  const std::vector<std::string> args(words.begin() + 1, words.end());

  int rc;
  try {
    rc = run_command(command, args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  const int obs_rc = flush_obs_outputs();
  return rc != 0 ? rc : obs_rc;
}
